package gm

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/trace"
)

// RecvEvent is delivered to the host when a complete message has arrived.
// Data is the host receive buffer, filled to the message length.
type RecvEvent struct {
	Src     fabric.NodeID
	SrcPort PortID
	MsgID   uint64
	Group   GroupID
	Data    []byte
}

// recvToken is one host-posted receive buffer awaiting a message.
type recvToken struct {
	buf []byte // len(buf) is the capacity
}

// asmKey identifies an in-progress message assembly.
type asmKey struct {
	src     fabric.NodeID
	srcPort PortID
	msgID   uint64
}

// Assembly is a message being gathered into a host receive buffer. It is
// exported (with accessor methods) because the multicast extension
// deposits forwarded packets into assemblies and retransmits from their
// host-memory replica — the paper's "use the message replica in the host
// memory for retransmission".
type Assembly struct {
	port     *Port
	key      asmKey
	group    GroupID
	buf      []byte
	msgLen   int
	received int
	done     bool
}

// Bytes exposes the registered host buffer backing the assembly.
func (a *Assembly) Bytes() []byte { return a.buf }

// MsgLen reports the total message length being assembled.
func (a *Assembly) MsgLen() int { return a.msgLen }

// Done reports whether the message completed and was delivered.
func (a *Assembly) Done() bool { return a.done }

// Deposit copies one packet's payload into the host buffer. When the last
// byte lands, the receive event is posted to the host (via the event-DMA
// path) and the assembly is retired. Depositing the same range twice
// panics — sequence checking upstream must prevent it.
func (a *Assembly) Deposit(off int, data []byte) {
	if a.done {
		panic("gm: deposit into completed assembly")
	}
	copy(a.buf[off:], data)
	a.received += len(data)
	if a.received > a.msgLen {
		panic(fmt.Sprintf("gm: assembly overflow: %d > %d", a.received, a.msgLen))
	}
	if a.received == a.msgLen {
		a.done = true
		delete(a.port.asms, a.key)
		a.port.postRecvEvent(&RecvEvent{
			Src:     a.key.src,
			SrcPort: a.key.srcPort,
			MsgID:   a.key.msgID,
			Group:   a.group,
			Data:    a.buf[:a.msgLen],
		})
	}
}

// Port is a host process's protected endpoint: the user-visible half of
// GM. All blocking methods take the calling simulated process.
type Port struct {
	nic *NIC
	id  PortID

	sendTokens int
	sendWaiter *sim.Waiter

	doneAvail  int // completed sends not yet consumed by WaitSendDone
	doneWaiter *sim.Waiter

	recvEvents []*RecvEvent
	recvWaiter *sim.Waiter

	recvTokens []*recvToken
	asms       map[asmKey]*Assembly

	// regions are remotely writable registered buffers (directed sends).
	regions    map[RegionID]*region
	nextRegion RegionID
}

func newPort(n *NIC, id PortID) *Port {
	return &Port{
		nic:        n,
		id:         id,
		sendTokens: n.Cfg.SendTokens,
		sendWaiter: sim.NewWaiter(n.Engine()),
		doneWaiter: sim.NewWaiter(n.Engine()),
		recvWaiter: sim.NewWaiter(n.Engine()),
		asms:       make(map[asmKey]*Assembly),
	}
}

// NIC returns the firmware NIC the port belongs to.
func (p *Port) NIC() *NIC { return p.nic }

// ID reports the port number.
func (p *Port) ID() PortID { return p.id }

// Node reports the port's network ID.
func (p *Port) Node() fabric.NodeID { return p.nic.ID() }

// Provide posts a receive buffer of the given capacity — a receive token.
// Like GM, receiving is impossible without posted tokens.
func (p *Port) Provide(capacity int) {
	if max := p.nic.Cfg.RecvTokensMax; max > 0 && len(p.recvTokens) >= max {
		panic(fmt.Errorf("%w: port %d exceeds %d", ErrTokenExhausted, p.id, max))
	}
	p.recvTokens = append(p.recvTokens, &recvToken{buf: make([]byte, capacity)})
}

// ProvideN posts n receive buffers of the given capacity.
func (p *Port) ProvideN(n, capacity int) {
	for i := 0; i < n; i++ {
		p.Provide(capacity)
	}
}

// RecvTokens reports how many receive buffers are currently posted.
func (p *Port) RecvTokens() int { return len(p.recvTokens) }

// FreeSendTokens reports the host-level send tokens currently available —
// back to Config.SendTokens once every posted send has completed.
func (p *Port) FreeSendTokens() int { return p.sendTokens }

// TakeSendToken blocks the caller until a host-level send token is free
// and consumes it. Exposed for the multicast extension's host API. The
// wait (zero when a token is free) feeds the token_wait_ns histogram —
// the host-visible cost of send-descriptor backpressure.
func (p *Port) TakeSendToken(proc *sim.Proc) {
	began := p.nic.Engine().Now()
	for p.sendTokens == 0 {
		p.sendWaiter.Wait(proc)
	}
	p.sendTokens--
	p.nic.m.tokenWaitNs.Observe(int64(p.nic.Engine().Now() - began))
}

// ReturnSendToken releases a host-level send token and wakes waiters.
// The firmware calls it when a send completes.
func (p *Port) ReturnSendToken() {
	p.sendTokens++
	p.doneAvail++
	p.sendWaiter.WakeOne()
	p.doneWaiter.WakeOne()
}

// Send transmits data to (dst, dstPort) reliably and in order. It blocks
// only until the send descriptor is posted (taking a send token); delivery
// completion is observable via WaitSendDone. The caller must not mutate
// data until the send completes.
func (p *Port) Send(proc *sim.Proc, dst fabric.NodeID, dstPort PortID, data []byte) {
	if dst == p.Node() {
		panic(ErrSelfSend)
	}
	p.TakeSendToken(proc)
	proc.Compute(p.nic.Cfg.HostSendPost)
	n := p.nic
	n.HW.HostPost(func() {
		n.HW.CPUDo(n.Cfg.SendEventCost, func() {
			c := n.sendConn(p.id, dst, dstPort)
			tok := &sendToken{
				port:  p,
				conn:  c,
				msgID: n.NewMsgID(),
				data:  data,
				onDone: func() {
					p.ReturnSendToken()
				},
			}
			c.enqueue(tok)
		})
	})
}

// WaitSendDone blocks until one previously-posted send has been fully
// acknowledged, consuming the completion.
func (p *Port) WaitSendDone(proc *sim.Proc) {
	for p.doneAvail == 0 {
		p.doneWaiter.Wait(proc)
	}
	p.doneAvail--
}

// SendSync sends and waits for the remote NIC to acknowledge all packets.
func (p *Port) SendSync(proc *sim.Proc, dst fabric.NodeID, dstPort PortID, data []byte) {
	p.Send(proc, dst, dstPort, data)
	p.WaitSendDone(proc)
}

// Recv blocks until a message arrives and returns its event, charging the
// host receive-path cost.
func (p *Port) Recv(proc *sim.Proc) *RecvEvent {
	for len(p.recvEvents) == 0 {
		p.recvWaiter.Wait(proc)
	}
	ev := p.recvEvents[0]
	p.recvEvents = p.recvEvents[1:]
	proc.Compute(p.nic.Cfg.HostRecvCost)
	return ev
}

// TryRecv returns a pending message without blocking.
func (p *Port) TryRecv() (*RecvEvent, bool) {
	if len(p.recvEvents) == 0 {
		return nil, false
	}
	ev := p.recvEvents[0]
	p.recvEvents = p.recvEvents[1:]
	return ev, true
}

// PendingRecvs reports the receive-event queue depth.
func (p *Port) PendingRecvs() int { return len(p.recvEvents) }

// postRecvEvent DMAs a receive event record to the host and wakes readers.
func (p *Port) postRecvEvent(ev *RecvEvent) {
	hw := p.nic.HW
	hw.RDMA.Do(hw.P.EventPostCost, func() {
		if p.nic.Trace.Enabled() {
			p.nic.Trace.Log(p.nic.Engine().Now(), p.nic.ID(), trace.Host,
				"delivered %d bytes from %v (msg %d, group %d)", len(ev.Data), ev.Src, ev.MsgID, ev.Group)
		}
		p.recvEvents = append(p.recvEvents, ev)
		p.recvWaiter.WakeAll()
	})
}

// PostGroupEvent posts a firmware-generated group event (e.g. a barrier
// completion) to the host through the normal event-DMA path.
func (p *Port) PostGroupEvent(ev *RecvEvent) { p.postRecvEvent(ev) }

// matchAssembly finds the in-progress assembly for a message, or matches a
// new receive token and opens one. Matching is best-fit (the smallest
// posted buffer that holds the message, oldest on ties), standing in for
// GM's size-class token matching: a large rendezvous landing buffer is
// never consumed by a small eager message. It reports false when no token
// fits — the caller must then refuse the packet.
func (p *Port) matchAssembly(src fabric.NodeID, srcPort PortID, msgID uint64, msgLen int, group GroupID) (*Assembly, bool) {
	k := asmKey{src: src, srcPort: srcPort, msgID: msgID}
	if a, ok := p.asms[k]; ok {
		return a, true
	}
	best := -1
	for i, t := range p.recvTokens {
		if len(t.buf) < msgLen {
			continue
		}
		if best == -1 || len(t.buf) < len(p.recvTokens[best].buf) {
			best = i
		}
	}
	if best == -1 {
		return nil, false
	}
	buf := p.recvTokens[best].buf
	p.recvTokens = append(p.recvTokens[:best], p.recvTokens[best+1:]...)
	a := &Assembly{port: p, key: k, group: group, buf: buf, msgLen: msgLen}
	p.asms[k] = a
	return a, true
}

// MatchAssembly exposes assembly matching to the multicast extension.
func (p *Port) MatchAssembly(src fabric.NodeID, srcPort PortID, msgID uint64, msgLen int, group GroupID) (*Assembly, bool) {
	return p.matchAssembly(src, srcPort, msgID, msgLen, group)
}
