package gm

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		KindData: "DATA", KindAck: "ACK", KindMcastData: "MCAST",
		KindMcastAck: "MACK", KindNack: "NACK", KindMcastNack: "MNACK",
		KindBarrier: "BARR", KindBarrierAck: "BARRACK",
		KindReduce: "RED", KindReduceAck: "REDACK", KindDirected: "DSEND",
		Kind(200): "Kind(200)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestFrameStringAndClone(t *testing.T) {
	fr := &Frame{
		Kind: KindData, SrcNode: 1, DstNode: 2, SrcPort: 3, DstPort: 4,
		Seq: 5, MsgID: 6, MsgLen: 100, Offset: 0, Payload: []byte{1, 2, 3},
	}
	s := fr.String()
	for _, want := range []string{"DATA", "n1:3->n2:4", "seq=5", "len=3"} {
		if !strings.Contains(s, want) {
			t.Errorf("frame string %q missing %q", s, want)
		}
	}
	cl := fr.Clone()
	cl.DstNode = 9
	if fr.DstNode != 2 {
		t.Fatal("Clone aliases the original header")
	}
	if &cl.Payload[0] != &fr.Payload[0] {
		t.Fatal("Clone copied the payload; it must share it")
	}
}

func TestPortAccessors(t *testing.T) {
	r := newRig(t, 2, nil)
	p := r.ports[0]
	if p.NIC() != r.nics[0] {
		t.Fatal("NIC accessor wrong")
	}
	if p.ID() != 1 {
		t.Fatalf("ID = %d", p.ID())
	}
	if p.Node() != 0 {
		t.Fatalf("Node = %v", p.Node())
	}
	p.Provide(128)
	if p.RecvTokens() != 1 {
		t.Fatalf("RecvTokens = %d", p.RecvTokens())
	}
	if _, ok := p.TryRecv(); ok {
		t.Fatal("TryRecv returned an event on an empty port")
	}
	if r.nics[0].Extension() != nil {
		t.Fatal("bare gm rig should have no firmware extension")
	}
}

func TestNICPortLookupPanicsOnUnknown(t *testing.T) {
	r := newRig(t, 2, nil)
	defer func() {
		if recover() == nil {
			t.Error("unknown port lookup did not panic")
		}
	}()
	r.nics[0].Port(99)
}

func TestOpenPortTwicePanics(t *testing.T) {
	r := newRig(t, 2, nil)
	defer func() {
		if recover() == nil {
			t.Error("double port open did not panic")
		}
	}()
	r.nics[0].OpenPort(1)
}

func TestRecvTokenCapEnforced(t *testing.T) {
	r := newRig(t, 2, func(c *Config) { c.RecvTokensMax = 2 })
	r.ports[0].Provide(16)
	r.ports[0].Provide(16)
	defer func() {
		if recover() == nil {
			t.Error("receive token cap not enforced")
		}
	}()
	r.ports[0].Provide(16)
}

func TestTryRecvReturnsArrivedMessage(t *testing.T) {
	r := newRig(t, 2, nil)
	r.eng.Spawn("send", func(p *sim.Proc) {
		r.ports[1].Provide(64)
		r.ports[0].SendSync(p, 1, 1, []byte{7})
	})
	r.run(t)
	ev, ok := r.ports[1].TryRecv()
	if !ok || ev.Data[0] != 7 {
		t.Fatal("TryRecv missed a delivered message")
	}
}

func TestInjectWrongSourcePanics(t *testing.T) {
	r := newRig(t, 2, nil)
	defer func() {
		if recover() == nil {
			t.Error("foreign-source inject did not panic")
		}
	}()
	r.nics[0].Inject(&Frame{Kind: KindData, SrcNode: 1, DstNode: 0}, nil)
}

func TestAssemblyAccessors(t *testing.T) {
	r := newRig(t, 2, nil)
	var a *Assembly
	r.eng.Spawn("recv", func(p *sim.Proc) {
		r.ports[1].Provide(64)
		var ok bool
		a, ok = r.ports[1].MatchAssembly(0, 1, 1, 10, 0)
		if !ok {
			t.Error("match failed with a posted token")
		}
	})
	r.run(t)
	if a.MsgLen() != 10 || a.Done() || len(a.Bytes()) != 64 {
		t.Fatalf("assembly accessors wrong: len=%d done=%v buf=%d",
			a.MsgLen(), a.Done(), len(a.Bytes()))
	}
	a.Deposit(0, make([]byte, 10))
	if !a.Done() {
		t.Fatal("assembly not done after full deposit")
	}
}

func TestAssemblyDoubleCompletePanics(t *testing.T) {
	r := newRig(t, 2, nil)
	var a *Assembly
	r.eng.Spawn("p", func(p *sim.Proc) {
		r.ports[1].Provide(64)
		a, _ = r.ports[1].MatchAssembly(0, 1, 1, 4, 0)
	})
	r.run(t)
	a.Deposit(0, []byte{1, 2, 3, 4})
	defer func() {
		if recover() == nil {
			t.Error("deposit into completed assembly did not panic")
		}
	}()
	a.Deposit(0, []byte{1})
}

func TestWindowZeroValueConfigSane(t *testing.T) {
	c := DefaultConfig()
	if c.Window <= 0 || c.MTU <= 0 || c.SendTokens <= 0 {
		t.Fatal("default config has nonpositive limits")
	}
	if c.WireSize(0) != c.HeaderBytes {
		t.Fatal("WireSize(0) != header size")
	}
}
