// Package metrics is the unified observability layer of the simulated
// Myrinet/GM stack. Every layer — the fabric (myrinet), the NIC hardware
// (lanai), the GM firmware (gm), and the multicast extension (core) —
// registers its counters, gauges, and histograms here, keyed by component
// and node, so a run can be explained the way the paper explains its
// curves: where the LANai CPU cycles went, how busy the DMA engines were,
// how many retransmissions the loss recovery paid, where buffer pools
// stalled.
//
// Instruments are allocation-light and nil-safe: a disabled registry (or a
// nil one) hands out nil instruments, and every method on a nil instrument
// is a no-op. Instrument updates never touch the simulation engine, so
// enabling metrics cannot change any simulated timestamp — a property the
// determinism tests pin down.
//
// Instruments are lock-free atomics: a sharded run (cluster.WithShards)
// updates one registry from several engine goroutines concurrently, and
// because every operation is commutative (sums, monotone high-water marks,
// bucket counts), final values stay deterministic no matter how shard
// execution interleaves. Registry lookups take a mutex — instruments are
// created lazily, sometimes mid-run.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Key identifies one instrument: the component (layer) that owns it, the
// node it belongs to (NodeFabric for fabric-wide instruments), and its
// name.
type Key struct {
	Component string `json:"component"`
	Node      int    `json:"node"`
	Name      string `json:"name"`
}

// NodeFabric is the Node value for instruments that belong to no single
// node (fabric-wide link counters, switch contention).
const NodeFabric = -1

func (k Key) String() string {
	if k.Node == NodeFabric {
		return k.Component + "." + k.Name
	}
	return fmt.Sprintf("%s[%d].%s", k.Component, k.Node, k.Name)
}

// Registry holds a run's instruments. The zero value is unusable; build
// one with New (enabled) or Disabled (all instruments are no-ops).
type Registry struct {
	disabled bool
	mu       sync.Mutex
	counters map[Key]*Counter
	gauges   map[Key]*Gauge
	hists    map[Key]*Histogram
}

// New returns an enabled registry.
func New() *Registry {
	return &Registry{
		counters: make(map[Key]*Counter),
		gauges:   make(map[Key]*Gauge),
		hists:    make(map[Key]*Histogram),
	}
}

// Disabled returns a registry whose instrument constructors all return
// nil, making every instrument operation a no-op.
func Disabled() *Registry { return &Registry{disabled: true} }

// Ensure returns r unchanged when non-nil, else a fresh enabled registry.
// Components use it so that a caller who wires no registry still gets
// working counters (the legacy Stats accessors read them).
func Ensure(r *Registry) *Registry {
	if r != nil {
		return r
	}
	return New()
}

// Enabled reports whether the registry hands out live instruments.
func (r *Registry) Enabled() bool { return r != nil && !r.disabled }

// Counter returns (creating on first use) the named counter, or nil when
// the registry is disabled.
func (r *Registry) Counter(component string, node int, name string) *Counter {
	if !r.Enabled() {
		return nil
	}
	k := Key{component, node, name}
	r.mu.Lock()
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	r.mu.Unlock()
	return c
}

// Gauge returns (creating on first use) the named gauge, or nil when the
// registry is disabled.
func (r *Registry) Gauge(component string, node int, name string) *Gauge {
	if !r.Enabled() {
		return nil
	}
	k := Key{component, node, name}
	r.mu.Lock()
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	r.mu.Unlock()
	return g
}

// Histogram returns (creating on first use) the named histogram, or nil
// when the registry is disabled.
func (r *Registry) Histogram(component string, node int, name string) *Histogram {
	if !r.Enabled() {
		return nil
	}
	k := Key{component, node, name}
	r.mu.Lock()
	h, ok := r.hists[k]
	if !ok {
		h = newHistogram()
		r.hists[k] = h
	}
	r.mu.Unlock()
	return h
}

// sortedKeys returns map keys in deterministic (component, node, name)
// order.
func sortedKeys[V any](m map[Key]V) []Key {
	out := make([]Key, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Component != b.Component {
			return a.Component < b.Component
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Name < b.Name
	})
	return out
}

// Counter is a monotonically increasing count. All methods are no-ops on
// a nil receiver.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// AddInt adds n when positive (negative and zero are ignored); it exists
// so duration-like int64 quantities can be accumulated without a cast at
// every call site.
func (c *Counter) AddInt(n int64) {
	if c != nil && n > 0 {
		c.v.Add(uint64(n))
	}
}

// Value reports the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous level with a high-water mark. All methods are
// no-ops on a nil receiver. Gauges track entity-local levels (one shard
// writes, so Add has no lost-update problem in practice); the high-water
// mark is a CAS loop so even a shared gauge's High stays monotone.
type Gauge struct{ v, high atomic.Int64 }

// Set replaces the level.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		h := g.high.Load()
		if v <= h || g.high.CompareAndSwap(h, v) {
			return
		}
	}
}

// Add moves the level by d (negative allowed).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.Set(g.v.Add(d))
}

// Value reports the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// High reports the high-water mark (0 on nil).
func (g *Gauge) High() int64 {
	if g == nil {
		return 0
	}
	return g.high.Load()
}

// HistBuckets is the number of fixed log2 histogram buckets: bucket 0
// holds observations <= 0, bucket i (1..64) holds observations v with
// bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
const HistBuckets = 65

// Histogram accumulates observations into fixed log2 buckets — no
// allocation per observation, constant memory, and enough resolution to
// tell a 5 µs token wait from a 500 µs retransmission timeout. All
// methods are no-ops on a nil receiver.
type Histogram struct {
	count atomic.Uint64
	sum   atomic.Int64
	// min and max hold the extremes offset by nothing, with hasObs
	// flagging whether any observation arrived (so 0 needn't be a
	// sentinel); all three advance by CAS, keeping the final values
	// deterministic under concurrent observers.
	min     atomic.Int64
	max     atomic.Int64
	buckets [HistBuckets]atomic.Uint64
}

// newHistogram seeds the CAS extremes so the first Observe needs no
// special case (the registry is the only constructor).
func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// BucketOf reports the bucket index an observation lands in.
func BucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketLow reports the smallest positive value of bucket i (0 for
// bucket 0).
func BucketLow(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// Observe folds one value into the histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	for {
		m := h.min.Load()
		if v >= m || h.min.CompareAndSwap(m, v) {
			break
		}
	}
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[BucketOf(v)].Add(1)
}

// Count reports how many observations were folded in (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the sum of all observations (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Min and Max report the extreme observations (0 on nil or empty).
func (h *Histogram) Min() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

func (h *Histogram) Max() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Mean reports the arithmetic mean observation (0 on nil or empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-th quantile (0..1) from the log2 buckets,
// returning the lower bound of the bucket holding that rank — a
// deliberately conservative estimate with log2 resolution.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	count := h.count.Load()
	if count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(count-1))
	var seen uint64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		seen += n
		if n > 0 && seen > rank {
			return BucketLow(i)
		}
	}
	return BucketLow(HistBuckets - 1)
}
