// Package metrics is the unified observability layer of the simulated
// Myrinet/GM stack. Every layer — the fabric (myrinet), the NIC hardware
// (lanai), the GM firmware (gm), and the multicast extension (core) —
// registers its counters, gauges, and histograms here, keyed by component
// and node, so a run can be explained the way the paper explains its
// curves: where the LANai CPU cycles went, how busy the DMA engines were,
// how many retransmissions the loss recovery paid, where buffer pools
// stalled.
//
// Instruments are allocation-light and nil-safe: a disabled registry (or a
// nil one) hands out nil instruments, and every method on a nil instrument
// is a no-op. Instrument updates never touch the simulation engine, so
// enabling metrics cannot change any simulated timestamp — a property the
// determinism tests pin down.
//
// The simulation is single-threaded in effect (one event callback or
// process runs at a time), so instruments are deliberately unsynchronized.
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
)

// Key identifies one instrument: the component (layer) that owns it, the
// node it belongs to (NodeFabric for fabric-wide instruments), and its
// name.
type Key struct {
	Component string `json:"component"`
	Node      int    `json:"node"`
	Name      string `json:"name"`
}

// NodeFabric is the Node value for instruments that belong to no single
// node (fabric-wide link counters, switch contention).
const NodeFabric = -1

func (k Key) String() string {
	if k.Node == NodeFabric {
		return k.Component + "." + k.Name
	}
	return fmt.Sprintf("%s[%d].%s", k.Component, k.Node, k.Name)
}

// Registry holds a run's instruments. The zero value is unusable; build
// one with New (enabled) or Disabled (all instruments are no-ops).
type Registry struct {
	disabled bool
	counters map[Key]*Counter
	gauges   map[Key]*Gauge
	hists    map[Key]*Histogram
}

// New returns an enabled registry.
func New() *Registry {
	return &Registry{
		counters: make(map[Key]*Counter),
		gauges:   make(map[Key]*Gauge),
		hists:    make(map[Key]*Histogram),
	}
}

// Disabled returns a registry whose instrument constructors all return
// nil, making every instrument operation a no-op.
func Disabled() *Registry { return &Registry{disabled: true} }

// Ensure returns r unchanged when non-nil, else a fresh enabled registry.
// Components use it so that a caller who wires no registry still gets
// working counters (the legacy Stats accessors read them).
func Ensure(r *Registry) *Registry {
	if r != nil {
		return r
	}
	return New()
}

// Enabled reports whether the registry hands out live instruments.
func (r *Registry) Enabled() bool { return r != nil && !r.disabled }

// Counter returns (creating on first use) the named counter, or nil when
// the registry is disabled.
func (r *Registry) Counter(component string, node int, name string) *Counter {
	if !r.Enabled() {
		return nil
	}
	k := Key{component, node, name}
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge, or nil when the
// registry is disabled.
func (r *Registry) Gauge(component string, node int, name string) *Gauge {
	if !r.Enabled() {
		return nil
	}
	k := Key{component, node, name}
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram, or nil
// when the registry is disabled.
func (r *Registry) Histogram(component string, node int, name string) *Histogram {
	if !r.Enabled() {
		return nil
	}
	k := Key{component, node, name}
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

// sortedKeys returns map keys in deterministic (component, node, name)
// order.
func sortedKeys[V any](m map[Key]V) []Key {
	out := make([]Key, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Component != b.Component {
			return a.Component < b.Component
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Name < b.Name
	})
	return out
}

// Counter is a monotonically increasing count. All methods are no-ops on
// a nil receiver.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// AddInt adds n when positive (negative and zero are ignored); it exists
// so duration-like int64 quantities can be accumulated without a cast at
// every call site.
func (c *Counter) AddInt(n int64) {
	if c != nil && n > 0 {
		c.v += uint64(n)
	}
}

// Value reports the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous level with a high-water mark. All methods are
// no-ops on a nil receiver.
type Gauge struct{ v, high int64 }

// Set replaces the level.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
	if v > g.high {
		g.high = v
	}
}

// Add moves the level by d (negative allowed).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.Set(g.v + d)
}

// Value reports the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// High reports the high-water mark (0 on nil).
func (g *Gauge) High() int64 {
	if g == nil {
		return 0
	}
	return g.high
}

// HistBuckets is the number of fixed log2 histogram buckets: bucket 0
// holds observations <= 0, bucket i (1..64) holds observations v with
// bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
const HistBuckets = 65

// Histogram accumulates observations into fixed log2 buckets — no
// allocation per observation, constant memory, and enough resolution to
// tell a 5 µs token wait from a 500 µs retransmission timeout. All
// methods are no-ops on a nil receiver.
type Histogram struct {
	count   uint64
	sum     int64
	min     int64
	max     int64
	buckets [HistBuckets]uint64
}

// BucketOf reports the bucket index an observation lands in.
func BucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketLow reports the smallest positive value of bucket i (0 for
// bucket 0).
func BucketLow(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// Observe folds one value into the histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[BucketOf(v)]++
}

// Count reports how many observations were folded in (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum reports the sum of all observations (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Min and Max report the extreme observations (0 on nil or empty).
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	return h.min
}

func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean reports the arithmetic mean observation (0 on nil or empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile estimates the q-th quantile (0..1) from the log2 buckets,
// returning the lower bound of the bucket holding that rank — a
// deliberately conservative estimate with log2 resolution.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.count-1))
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if n > 0 && seen > rank {
			return BucketLow(i)
		}
	}
	return BucketLow(HistBuckets - 1)
}
