package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilAndDisabledInstrumentsAreNoOps(t *testing.T) {
	for name, reg := range map[string]*Registry{"nil": nil, "disabled": Disabled()} {
		c := reg.Counter("gm", 0, "sends")
		g := reg.Gauge("lanai", 0, "inuse")
		h := reg.Histogram("core", 0, "latency_ns")
		if c != nil || g != nil || h != nil {
			t.Fatalf("%s registry handed out live instruments", name)
		}
		c.Inc()
		c.Add(5)
		c.AddInt(7)
		g.Set(3)
		g.Add(-1)
		h.Observe(42)
		if c.Value() != 0 || g.Value() != 0 || g.High() != 0 || h.Count() != 0 {
			t.Fatalf("%s instruments accumulated state", name)
		}
		if snap := reg.Snapshot(); len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
			t.Fatalf("%s registry produced a non-empty snapshot", name)
		}
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := New()
	c := r.Counter("gm", 1, "sends")
	c.Inc()
	c.Add(2)
	c.AddInt(3)
	c.AddInt(-5) // ignored: counters are monotone
	if c.Value() != 6 {
		t.Fatalf("counter = %d, want 6", c.Value())
	}
	if again := r.Counter("gm", 1, "sends"); again != c {
		t.Fatal("same key returned a different counter")
	}
	g := r.Gauge("lanai", 1, "inuse")
	g.Add(3)
	g.Add(2)
	g.Add(-4)
	if g.Value() != 1 || g.High() != 5 {
		t.Fatalf("gauge = %d high %d, want 1 high 5", g.Value(), g.High())
	}
}

func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-7, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3},
		{8, 4}, {1023, 10}, {1024, 11}, {1 << 40, 41},
	}
	for _, c := range cases {
		if got := BucketOf(c.v); got != c.bucket {
			t.Errorf("BucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	// Bucket lower bounds invert BucketOf: BucketOf(BucketLow(i)) == i.
	// (Bucket 64's lower bound overflows int64, so positive observations
	// never reach it; stop at 63.)
	for i := 1; i < HistBuckets-1; i++ {
		if got := BucketOf(BucketLow(i)); got != i {
			t.Errorf("BucketOf(BucketLow(%d)) = %d", i, got)
		}
	}

	h := New().Histogram("core", 0, "lat_ns")
	for _, v := range []int64{1, 2, 3, 1000, 1000, 4096} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 6102 {
		t.Fatalf("count=%d sum=%d, want 6/6102", h.Count(), h.Sum())
	}
	if h.Min() != 1 || h.Max() != 4096 {
		t.Fatalf("min=%d max=%d, want 1/4096", h.Min(), h.Max())
	}
	if m := h.Mean(); m < 1016 || m > 1018 {
		t.Fatalf("mean = %f", m)
	}
	// Median rank (floor(0.5*5) = 2, the third-smallest value, 3) falls in
	// the [2,4) bucket, whose lower bound is 2.
	if q := h.Quantile(0.5); q != 2 {
		t.Fatalf("p50 = %d, want 2", q)
	}
	if q := h.Quantile(1); q != 4096 {
		t.Fatalf("p100 = %d, want 4096", q)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := New()
	c := r.Counter("gm", 0, "sends")
	h := r.Histogram("gm", 0, "wait_ns")
	c.Add(10)
	h.Observe(100)
	before := r.Snapshot()

	c.Add(5)
	h.Observe(200)
	h.Observe(300)
	r.Counter("core", 2, "forwards").Add(7) // appears only after the baseline
	d := r.Snapshot().Diff(before)

	if got := d.Counter("gm", 0, "sends"); got != 5 {
		t.Fatalf("diffed counter = %d, want 5", got)
	}
	if got := d.Counter("core", 2, "forwards"); got != 7 {
		t.Fatalf("new counter diff = %d, want 7", got)
	}
	var hv HistVal
	for _, x := range d.Histograms {
		if x.Name == "wait_ns" {
			hv = x
		}
	}
	if hv.Count != 2 || hv.Sum != 500 {
		t.Fatalf("diffed histogram count=%d sum=%d, want 2/500", hv.Count, hv.Sum)
	}
}

func TestSnapshotAggregationHelpers(t *testing.T) {
	r := New()
	r.Counter("gm", 0, "retransmits").Add(3)
	r.Counter("gm", 1, "retransmits").Add(4)
	r.Histogram("core", 0, "fanout").Observe(2)
	r.Histogram("core", 1, "fanout").Observe(8)
	s := r.Snapshot()
	if sum := s.CounterSum("gm", "retransmits"); sum != 7 {
		t.Fatalf("CounterSum = %d, want 7", sum)
	}
	m := s.HistMerged("core", "fanout")
	if m.Count != 2 || m.Min != 2 || m.Max != 8 {
		t.Fatalf("merged hist = %+v", m)
	}
	comps := s.Components()
	if len(comps) != 2 || comps[0] != "core" || comps[1] != "gm" {
		t.Fatalf("components = %v", comps)
	}
}

func TestSnapshotRendering(t *testing.T) {
	r := New()
	r.Counter("lanai", 0, "cpu_busy_ns").Add(1500)
	r.Gauge("lanai", 0, "sendbuf_inuse").Add(9)
	r.Histogram("gm", 0, "token_wait_ns").Observe(2_000_000)
	s := r.Snapshot()

	var tbl bytes.Buffer
	s.WriteTable(&tbl)
	for _, want := range []string{"[lanai]", "cpu_busy_ns", "1.50µs", "high-water 9", "token_wait_ns", "2.000ms"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("table missing %q:\n%s", want, tbl.String())
		}
	}

	var js bytes.Buffer
	if err := s.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if back.Counters[0].Value != 1500 || back.Counters[0].Component != "lanai" {
		t.Fatalf("round-tripped counter = %+v", back.Counters[0])
	}
}

func TestEnsure(t *testing.T) {
	r := New()
	if Ensure(r) != r {
		t.Fatal("Ensure replaced a live registry")
	}
	e := Ensure(nil)
	if !e.Enabled() {
		t.Fatal("Ensure(nil) returned a dead registry")
	}
	d := Disabled()
	if Ensure(d) != d {
		t.Fatal("Ensure replaced a disabled registry (explicit no-op must stick)")
	}
}
