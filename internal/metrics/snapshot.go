package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// CounterVal is one counter's value in a snapshot.
type CounterVal struct {
	Key
	Value uint64 `json:"value"`
}

// GaugeVal is one gauge's level and high-water mark in a snapshot.
type GaugeVal struct {
	Key
	Value int64 `json:"value"`
	High  int64 `json:"high"`
}

// HistVal is one histogram's accumulated shape in a snapshot. Buckets
// holds only the non-empty log2 buckets, index → count.
type HistVal struct {
	Key
	Count   uint64         `json:"count"`
	Sum     int64          `json:"sum"`
	Min     int64          `json:"min"`
	Max     int64          `json:"max"`
	Buckets map[int]uint64 `json:"buckets,omitempty"`
}

// Mean reports the snapshot histogram's mean observation.
func (h HistVal) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a point-in-time copy of a registry, ordered by (component,
// node, name). Snapshots are plain data: diff them, render them, or
// marshal them to JSON.
type Snapshot struct {
	Counters   []CounterVal `json:"counters"`
	Gauges     []GaugeVal   `json:"gauges"`
	Histograms []HistVal    `json:"histograms"`
}

// Snapshot copies the registry's current instrument values. A nil or
// disabled registry yields an empty snapshot. Snapshot between runs, not
// while shard goroutines are mid-window — a mid-run snapshot is race-free
// but may catch an arbitrary interleaving.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if !r.Enabled() {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, k := range sortedKeys(r.counters) {
		s.Counters = append(s.Counters, CounterVal{Key: k, Value: r.counters[k].Value()})
	}
	for _, k := range sortedKeys(r.gauges) {
		g := r.gauges[k]
		s.Gauges = append(s.Gauges, GaugeVal{Key: k, Value: g.Value(), High: g.High()})
	}
	for _, k := range sortedKeys(r.hists) {
		h := r.hists[k]
		hv := HistVal{Key: k, Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max()}
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n > 0 {
				if hv.Buckets == nil {
					hv.Buckets = make(map[int]uint64)
				}
				hv.Buckets[i] = n
			}
		}
		s.Histograms = append(s.Histograms, hv)
	}
	return s
}

// Diff returns the change from prev to s: counters and histogram
// counts/sums subtract (instruments absent from prev count from zero);
// gauges keep their current level but report the high-water mark reached
// in s. Instruments that vanished from s are dropped.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	var out Snapshot
	pc := make(map[Key]uint64, len(prev.Counters))
	for _, c := range prev.Counters {
		pc[c.Key] = c.Value
	}
	for _, c := range s.Counters {
		out.Counters = append(out.Counters, CounterVal{Key: c.Key, Value: c.Value - pc[c.Key]})
	}
	out.Gauges = append(out.Gauges, s.Gauges...)
	ph := make(map[Key]HistVal, len(prev.Histograms))
	for _, h := range prev.Histograms {
		ph[h.Key] = h
	}
	for _, h := range s.Histograms {
		p := ph[h.Key]
		d := HistVal{Key: h.Key, Count: h.Count - p.Count, Sum: h.Sum - p.Sum, Min: h.Min, Max: h.Max}
		for i, n := range h.Buckets {
			if delta := n - p.Buckets[i]; delta > 0 {
				if d.Buckets == nil {
					d.Buckets = make(map[int]uint64)
				}
				d.Buckets[i] = delta
			}
		}
		out.Histograms = append(out.Histograms, d)
	}
	return out
}

// CounterSum adds up one named counter across all nodes of a component.
func (s Snapshot) CounterSum(component, name string) uint64 {
	var sum uint64
	for _, c := range s.Counters {
		if c.Component == component && c.Name == name {
			sum += c.Value
		}
	}
	return sum
}

// Counter reports one specific counter's value (0 when absent).
func (s Snapshot) Counter(component string, node int, name string) uint64 {
	for _, c := range s.Counters {
		if c.Key == (Key{component, node, name}) {
			return c.Value
		}
	}
	return 0
}

// HistMerged merges one named histogram across all nodes of a component.
func (s Snapshot) HistMerged(component, name string) HistVal {
	out := HistVal{Key: Key{Component: component, Node: NodeFabric, Name: name}}
	first := true
	for _, h := range s.Histograms {
		if h.Component != component || h.Name != name {
			continue
		}
		out.Count += h.Count
		out.Sum += h.Sum
		if h.Count > 0 {
			if first || h.Min < out.Min {
				out.Min = h.Min
			}
			if first || h.Max > out.Max {
				out.Max = h.Max
			}
			first = false
		}
		for i, n := range h.Buckets {
			if out.Buckets == nil {
				out.Buckets = make(map[int]uint64)
			}
			out.Buckets[i] += n
		}
	}
	return out
}

// Components lists the distinct components present in the snapshot, in
// sorted order.
func (s Snapshot) Components() []string {
	seen := map[string]bool{}
	for _, c := range s.Counters {
		seen[c.Component] = true
	}
	for _, g := range s.Gauges {
		seen[g.Component] = true
	}
	for _, h := range s.Histograms {
		seen[h.Component] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// formatValue renders an instrument value, treating *_ns names as virtual
// durations.
func formatValue(name string, v float64) string {
	if strings.HasSuffix(name, "_ns") {
		switch {
		case v >= 1e6:
			return fmt.Sprintf("%.3fms", v/1e6)
		case v >= 1e3:
			return fmt.Sprintf("%.2fµs", v/1e3)
		default:
			return fmt.Sprintf("%.0fns", v)
		}
	}
	return fmt.Sprintf("%.0f", v)
}

// WriteTable renders the snapshot as a human-readable table, one section
// per component, counters/gauges/histograms aggregated across nodes (the
// per-node detail is in the JSON dump).
func (s Snapshot) WriteTable(w io.Writer) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	for _, comp := range s.Components() {
		fmt.Fprintf(tw, "[%s]\t\t\n", comp)
		type agg struct {
			val   float64
			nodes int
		}
		sums := map[string]*agg{}
		var names []string
		for _, c := range s.Counters {
			if c.Component != comp {
				continue
			}
			a := sums[c.Name]
			if a == nil {
				a = &agg{}
				sums[c.Name] = a
				names = append(names, c.Name)
			}
			a.val += float64(c.Value)
			a.nodes++
		}
		sort.Strings(names)
		for _, n := range names {
			a := sums[n]
			fmt.Fprintf(tw, "  %s\t%s\t(%d nodes)\n", n, formatValue(n, a.val), a.nodes)
		}
		gaugeHigh := map[string]int64{}
		var gnames []string
		for _, g := range s.Gauges {
			if g.Component != comp {
				continue
			}
			high, ok := gaugeHigh[g.Name]
			if !ok {
				gnames = append(gnames, g.Name)
			}
			if !ok || g.High > high {
				gaugeHigh[g.Name] = g.High
			}
		}
		sort.Strings(gnames)
		for _, n := range gnames {
			fmt.Fprintf(tw, "  %s\thigh-water %s\t\n", n, formatValue(n, float64(gaugeHigh[n])))
		}
		hseen := map[string]bool{}
		var hnames []string
		for _, h := range s.Histograms {
			if h.Component != comp || hseen[h.Name] {
				continue
			}
			hseen[h.Name] = true
			hnames = append(hnames, h.Name)
		}
		sort.Strings(hnames)
		for _, n := range hnames {
			m := s.HistMerged(comp, n)
			if m.Count == 0 {
				continue
			}
			fmt.Fprintf(tw, "  %s\tn=%d mean=%s max=%s\t\n",
				n, m.Count, formatValue(n, m.Mean()), formatValue(n, float64(m.Max)))
		}
	}
}

// WriteJSON dumps the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
