package explore

import "repro/internal/metrics"

// item is one removable decision during shrinking, tagged by list.
type item struct {
	tick  *Tick
	fault *FaultPoint
	shift *Shift
}

func scheduleItems(s Schedule) []item {
	items := make([]item, 0, s.Decisions())
	for i := range s.Ticks {
		items = append(items, item{tick: &s.Ticks[i]})
	}
	for i := range s.Faults {
		items = append(items, item{fault: &s.Faults[i]})
	}
	for i := range s.Shifts {
		items = append(items, item{shift: &s.Shifts[i]})
	}
	return items
}

func itemsSchedule(seed int64, items []item) Schedule {
	s := Schedule{Seed: seed}
	for _, it := range items {
		switch {
		case it.tick != nil:
			s.Ticks = append(s.Ticks, *it.tick)
		case it.fault != nil:
			s.Faults = append(s.Faults, *it.fault)
		case it.shift != nil:
			s.Shifts = append(s.Shifts, *it.shift)
		}
	}
	return s
}

// Shrink delta-debugs a failing outcome's schedule to a locally minimal
// decision set: classic ddmin over the combined tick/fault/shift list,
// removing complement chunks while the schedule still fails, then
// halving granularity, until no single decision can be removed. The
// returned outcome is the minimal schedule's (still-failing) run; the
// int is how many re-executions shrinking spent, bounded by
// cfg.MaxShrinkRuns. A passing outcome is returned unchanged.
func Shrink(cfg Config, failing Outcome, mRuns *metrics.Counter) (Outcome, int) {
	cfg = cfg.withDefaults()
	if failing.Pass {
		return failing, 0
	}
	seed := failing.Schedule.Seed
	items := scheduleItems(failing.Schedule)
	best := failing
	runs := 0
	try := func(sub []item) (Outcome, bool) {
		if runs >= cfg.MaxShrinkRuns {
			return Outcome{}, false
		}
		runs++
		if mRuns != nil {
			mRuns.Inc()
		}
		out := Run(cfg, itemsSchedule(seed, sub))
		return out, !out.Pass
	}

	n := 2
	for len(items) >= 1 && runs < cfg.MaxShrinkRuns {
		chunk := (len(items) + n - 1) / n
		reduced := false
		for start := 0; start < len(items); start += chunk {
			end := start + chunk
			if end > len(items) {
				end = len(items)
			}
			// Complement: everything except [start, end).
			sub := make([]item, 0, len(items)-(end-start))
			sub = append(sub, items[:start]...)
			sub = append(sub, items[end:]...)
			if out, stillFails := try(sub); stillFails {
				items = sub
				best = out
				n = maxInt(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(items) {
				break // single-item granularity and nothing removable
			}
			n = minInt(2*n, len(items))
		}
	}
	return best, runs
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// exploreMetrics wires the explorer's own instrumentation into the
// (optional) caller-supplied registry.
func exploreMetrics(cfg Config) (runs, failures, shrinkRuns *metrics.Counter) {
	reg := metrics.Ensure(cfg.Metrics)
	return reg.Counter("explore", 0, "schedules_run"),
		reg.Counter("explore", 0, "failures"),
		reg.Counter("explore", 0, "shrink_runs")
}
