package explore

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// Every schedule round-trips exactly through its one-line token — the
// property that makes the printed repro command a faithful replay.
func TestScheduleRoundTrip(t *testing.T) {
	scheds := []Schedule{
		{Seed: 1},
		{Seed: -42},
		{Seed: 7, Ticks: []Tick{{Pos: 3, Val: 2}, {Pos: 90, Val: 1}}},
		{
			Seed:   11,
			Ticks:  []Tick{{Pos: 0, Val: 5}},
			Faults: []FaultPoint{{Kind: FaultDropData, At: 100 * sim.Microsecond, Dur: 50 * sim.Microsecond, Node: 3}},
			Shifts: []Shift{{Event: 2, By: 40 * sim.Microsecond}},
		},
		{
			Seed: 2,
			Faults: []FaultPoint{
				{Kind: FaultPause, At: 10, Dur: 20, Node: 1},
				{Kind: FaultDropAcks, At: 10, Dur: 20, Node: 0},
				{Kind: FaultDup, At: 5, Dur: 7, Node: 0},
			},
		},
	}
	for _, s := range scheds {
		tok := s.String()
		got, err := Parse(tok)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tok, err)
		}
		if got.String() != tok {
			t.Fatalf("round trip changed token: %q -> %q", tok, got.String())
		}
		if !reflect.DeepEqual(got.canon(), s.canon()) {
			t.Fatalf("round trip changed schedule:\nsent %+v\ngot  %+v", s.canon(), got.canon())
		}
	}
}

// The token is canonical: decision order in the struct does not change it,
// so it doubles as the distinct-schedule dedup key.
func TestScheduleTokenCanonical(t *testing.T) {
	a := Schedule{Seed: 5, Ticks: []Tick{{Pos: 9, Val: 1}, {Pos: 2, Val: 3}}}
	b := Schedule{Seed: 5, Ticks: []Tick{{Pos: 2, Val: 3}, {Pos: 9, Val: 1}}}
	if a.String() != b.String() {
		t.Fatalf("permuted decision lists produced different tokens: %q vs %q", a, b)
	}
}

func TestScheduleParseRejectsJunk(t *testing.T) {
	for _, tok := range []string{
		"", "x1", "s", "sfoo",
		"s1!t3", "s1!q3.4", "s1!", "s1!fnope@1+2.n0", "s1!fdup@1", "s1!c4",
	} {
		if _, err := Parse(tok); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", tok)
		}
	}
}
