package explore

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// Two runs of the same (Config, Schedule) pair are identical field for
// field — the bedrock the replay command and the CI determinism diff
// stand on.
func TestRunDeterministicPerSchedule(t *testing.T) {
	cfg := Config{Nodes: 6, Msgs: 4, Transitions: 3, Seed: 9}
	scheds := []Schedule{
		{Seed: 9},
		{Seed: 9, Ticks: []Tick{{Pos: 5, Val: 1}, {Pos: 40, Val: 2}}},
		{Seed: 9, Faults: []FaultPoint{{Kind: FaultDropData, At: 50000, Dur: 80000, Node: 2}}},
	}
	for _, s := range scheds {
		a, b := Run(cfg, s), Run(cfg, s)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("schedule %s: two runs diverged:\n%+v\n%+v", s, a, b)
		}
	}
}

// The default (zero-decision) schedule passes every invariant: permuting
// nothing must reproduce the plain membership run the rest of the suite
// already validates.
func TestDefaultSchedulePasses(t *testing.T) {
	out := Run(Config{Seed: 3}, Schedule{})
	if !out.Pass {
		t.Fatalf("default schedule failed: %v", out.Violations)
	}
	if out.ChoicePoints == 0 || out.MaxBranch < 2 {
		t.Fatalf("default run exposed no decision space (points=%d branch=%d) — nothing to explore",
			out.ChoicePoints, out.MaxBranch)
	}
}

// renderReport flattens a Report to the byte-comparable form the
// determinism property diffs.
func renderReport(rep Report) string {
	s := fmt.Sprintf("distinct=%d enum=%d sampled=%d cp=%d mb=%d\n",
		rep.Distinct, rep.Enumerated, rep.Sampled, rep.ChoicePoints, rep.MaxBranch)
	for _, f := range rep.Failures {
		s += fmt.Sprintf("fail %s min %s runs %d viol %v\n", f.Schedule, f.Minimal, f.ShrinkRuns, f.Violations)
	}
	return s
}

// Explorer determinism property: the same exploration seed enumerates
// byte-identical schedule sets and verdicts across two campaigns. The CI
// smoke re-checks this through cmd/explore under -race.
func TestExploreDeterminism(t *testing.T) {
	cfg := Config{Nodes: 6, Msgs: 4, Transitions: 3, Seed: 5}
	a := renderReport(Explore(cfg, 60, nil))
	b := renderReport(Explore(cfg, 60, nil))
	if a != b {
		t.Fatalf("two identically-seeded campaigns diverged:\n--- first\n%s--- second\n%s", a, b)
	}
}

// A known-bad injected mutation (test-only: fail once >= 3 non-default
// tie-breaks are taken) is caught by the campaign and shrinks to a
// counterexample of at most 5 decisions — the end-to-end proof that the
// explorer can both find and minimize a schedule-dependent bug.
func TestInjectedMutationCaughtAndShrunk(t *testing.T) {
	cfg := Config{Nodes: 6, Msgs: 4, Transitions: 3, Seed: 5, failNonDefault: 3}
	rep := Explore(cfg, 60, nil)
	if len(rep.Failures) == 0 {
		t.Fatal("campaign never tripped the injected mutation")
	}
	ce := rep.Failures[0]
	if d := ce.Minimal.Decisions(); d > 5 {
		t.Fatalf("minimal counterexample has %d decisions, want <= 5: %s", d, ce.Minimal)
	}
	if d := ce.Minimal.Decisions(); d < 3 {
		t.Fatalf("minimal counterexample has %d decisions — cannot reach the 3-decision threshold: %s", d, ce.Minimal)
	}
	// The minimal schedule still fails, and replays identically through
	// its printed token.
	direct := Run(cfg, ce.Minimal)
	if direct.Pass {
		t.Fatalf("minimal counterexample %s passes when replayed", ce.Minimal)
	}
	parsed, err := Parse(ce.Minimal.String())
	if err != nil {
		t.Fatalf("minimal counterexample token does not parse: %v", err)
	}
	replayed := Run(cfg, parsed)
	if !reflect.DeepEqual(direct, replayed) {
		t.Fatalf("replay through the token diverged:\n%+v\n%+v", direct, replayed)
	}
}

// Regression: a timed fault armed before member.RunOn must overlap the
// run. member.RunOn's install barrier used to drain the WHOLE event heap
// (c.Run()), firing injector-armed pause/resume events during setup and
// advancing the clock past every fault window before any membership
// process existed — so NIC pauses (and, once the clock had jumped, every
// predicate fault window too) never touched the traffic. The explorer
// surfaced it: a pause outlasting the deadline still "passed", with a
// finish time past the deadline. Pinned schedules, from the campaign
// that caught it:
func TestPauseFaultOverlapsRun(t *testing.T) {
	cfg := Config{Nodes: 6, Msgs: 4, Transitions: 3, Seed: 5}

	// A mid-run pause that ends inside the deadline: the run must stall
	// on it (finish after the pause lifts) and then recover cleanly.
	const pauseEnd = 900050000 // At + Dur from the pinned token
	sched, err := Parse("s5!fpause@50000+900000000.n3")
	if err != nil {
		t.Fatal(err)
	}
	out := Run(cfg, sched)
	if !out.Pass {
		t.Fatalf("recoverable pause schedule failed: %v", out.Violations)
	}
	if out.Finish < pauseEnd {
		t.Fatalf("finish %v precedes pause end %v — the fault never overlapped the run",
			out.Finish, sim.Time(pauseEnd))
	}

	// The same pause stretched past the deadline must be detected as an
	// unrecovered run, not silently waited out.
	sched, err = Parse("s5!fpause@50000+1100000000.n3")
	if err != nil {
		t.Fatal(err)
	}
	if out := Run(cfg, sched); out.Pass {
		t.Fatalf("pause outlasting the deadline passed (finish %v)", out.Finish)
	}
}

// Shrinking a passing outcome is a no-op, and shrinking stays within its
// run budget.
func TestShrinkBounds(t *testing.T) {
	cfg := Config{Nodes: 6, Msgs: 4, Transitions: 3, Seed: 5, MaxShrinkRuns: 25, failNonDefault: 3}
	pass := Run(cfg, Schedule{})
	if !pass.Pass {
		t.Fatalf("default schedule unexpectedly failed: %v", pass.Violations)
	}
	if out, runs := Shrink(cfg, pass, nil); runs != 0 || !reflect.DeepEqual(out, pass) {
		t.Fatalf("shrinking a passing outcome ran %d times", runs)
	}
	// Build a deliberately fat failing schedule and confirm the budget cap.
	fat := Schedule{Seed: 5}
	for i := uint32(0); i < 12; i++ {
		fat.Ticks = append(fat.Ticks, Tick{Pos: i * 3, Val: 1})
	}
	out := Run(cfg, fat)
	if out.Pass {
		t.Skip("fat schedule did not trip the mutation under this seed")
	}
	min, runs := Shrink(cfg, out, nil)
	if runs > cfg.MaxShrinkRuns {
		t.Fatalf("shrink spent %d runs, budget %d", runs, cfg.MaxShrinkRuns)
	}
	if min.Pass {
		t.Fatal("shrink returned a passing schedule")
	}
	if min.Schedule.Decisions() > fat.Decisions() {
		t.Fatal("shrink grew the schedule")
	}
}
