package explore

import (
	"fmt"

	"repro/internal/sim"
)

// Counterexample is one failing schedule, shrunk.
type Counterexample struct {
	Schedule   Schedule // the schedule that first failed
	Minimal    Schedule // the ddmin-reduced schedule (still failing)
	Violations []string // the minimal schedule's violations
	ShrinkRuns int      // re-executions delta debugging spent
}

// Report is one exploration campaign's result.
type Report struct {
	// Distinct counts distinct schedules run (by canonical token);
	// Enumerated and Sampled split them by origin. The probe run of the
	// empty schedule is included in Distinct.
	Distinct   int
	Enumerated int
	Sampled    int
	// ChoicePoints/MaxBranch describe the default schedule's trace: how
	// many tie-break decisions it exposes and the widest enabled set.
	ChoicePoints int
	MaxBranch    int
	Failures     []Counterexample
}

// Explore runs a campaign of up to budget distinct schedules against the
// config's workload: the default schedule first (the probe that measures
// the decision space), then systematic single-decision enumeration over
// the probe's choice points, then seed-derived random sampling of deeper
// schedules (multi-tick, faults, churn shifts). Every failure is shrunk
// to a minimal counterexample. The whole campaign is a pure function of
// cfg — two calls return identical Reports, which the CI smoke diffs.
//
// progress, when non-nil, receives one line per phase and per failure.
func Explore(cfg Config, budget int, progress func(string)) Report {
	cfg = cfg.withDefaults()
	if budget <= 0 {
		budget = 500
	}
	note := func(format string, args ...any) {
		if progress != nil {
			progress(fmt.Sprintf(format, args...))
		}
	}
	var rep Report
	seen := make(map[string]bool, budget)
	mRuns, mFailures, mShrinkRuns := exploreMetrics(cfg)

	// A failure's shrink + bookkeeping, shared by all phases.
	fail := func(out Outcome) {
		mFailures.Inc()
		min, runs := Shrink(cfg, out, mShrinkRuns)
		rep.Failures = append(rep.Failures, Counterexample{
			Schedule:   out.Schedule,
			Minimal:    min.Schedule,
			Violations: min.Violations,
			ShrinkRuns: runs,
		})
		note("FAIL %s -> minimal %s (%d decisions, %d shrink runs)",
			out.Schedule, min.Schedule, min.Schedule.Decisions(), runs)
	}
	run := func(s Schedule) (Outcome, bool) {
		key := s.String()
		if seen[key] {
			return Outcome{}, false
		}
		seen[key] = true
		mRuns.Inc()
		out := Run(cfg, s)
		if !out.Pass {
			fail(out)
		}
		return out, true
	}

	// Phase 1: probe. The empty schedule is the default FIFO run; its
	// choice-point count is the enumerable decision space.
	probe, _ := run(Schedule{Seed: cfg.Seed})
	rep.ChoicePoints = probe.ChoicePoints
	rep.MaxBranch = probe.MaxBranch
	note("probe: %d choice points, max branch %d, finish %v",
		probe.ChoicePoints, probe.MaxBranch, probe.Finish)

	// Phase 2: systematic single-decision enumeration. Half the budget
	// flips one tie-break at a time; positions stride the whole run so
	// shallow and deep choice points both get coverage even when the
	// space exceeds the budget.
	enumBudget := budget / 2
	vals := probe.MaxBranch - 1
	if vals > 3 {
		vals = 3
	}
	if vals > 0 && probe.ChoicePoints > 0 {
		stride := probe.ChoicePoints * vals / enumBudget
		if stride < 1 {
			stride = 1
		}
		for pos := 0; pos < probe.ChoicePoints && len(seen) < 1+enumBudget; pos += stride {
			for v := 1; v <= vals && len(seen) < 1+enumBudget; v++ {
				if _, ok := run(Schedule{Seed: cfg.Seed, Ticks: []Tick{{Pos: uint32(pos), Val: uint32(v)}}}); ok {
					rep.Enumerated++
				}
			}
		}
	}
	note("enumerated %d single-decision schedules", rep.Enumerated)

	// Phase 3: seed-derived random sampling of deeper schedules. Each
	// sample combines several tie-break overrides with optional fault
	// placements and churn shifts — the compound interleavings
	// enumeration cannot reach.
	rng := sim.NewRNG(sampleSeed(cfg.Seed))
	span := int64(600 * sim.Microsecond) // where the run's traffic and churn live
	for guard := 0; len(seen) < 1+budget && guard < budget*4; guard++ {
		s := Schedule{Seed: cfg.Seed}
		for k := 1 + rng.Intn(6); k > 0; k-- {
			pos := uint32(rng.Intn(maxInt(probe.ChoicePoints, 1)))
			s.Ticks = append(s.Ticks, Tick{Pos: pos, Val: uint32(1 + rng.Intn(maxInt(probe.MaxBranch-1, 1)))})
		}
		if rng.Intn(4) == 0 {
			kinds := []string{FaultDropData, FaultDropAcks, FaultDup, FaultPause}
			f := FaultPoint{
				Kind: kinds[rng.Intn(len(kinds))],
				At:   sim.Time(rng.Intn(int(span))),
				Dur:  20*sim.Microsecond + sim.Time(rng.Intn(int(130*sim.Microsecond))),
				Node: 1 + rng.Intn(cfg.Nodes-1),
			}
			s.Faults = append(s.Faults, f)
		}
		if rng.Intn(3) == 0 {
			for k := 1 + rng.Intn(2); k > 0; k-- {
				s.Shifts = append(s.Shifts, Shift{
					Event: rng.Intn(maxInt(cfg.Transitions, 1)),
					By:    sim.Time(rng.Intn(int(80 * sim.Microsecond))),
				})
			}
		}
		if _, ok := run(s); ok {
			rep.Sampled++
		}
	}
	note("sampled %d randomized schedules", rep.Sampled)

	rep.Distinct = len(seen)
	return rep
}

// sampleSeed derives the sampling RNG's seed from the campaign seed
// (splitmix-style finalizer) so schedule contents and exploration order
// are a pure function of the seed.
func sampleSeed(seed int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64((z ^ (z >> 31)) & 0x7fffffffffffffff)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
