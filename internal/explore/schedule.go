// Package explore turns the deterministic simulator into a protocol model
// checker for the epoch membership subsystem. A Schedule is a compact,
// replayable description of one execution of a churn run: the base seed
// (cluster wiring + churn plan), a sparse set of tie-break decisions fed
// to the engine's controlled scheduler (sim.Engine.SetChooser), a set of
// fault actions reusing the chaos injector's deterministic rules, and a
// set of churn-timing shifts. The explorer enumerates and samples
// schedules, holds every resulting trace to the full membership invariant
// (chaos.CheckMemberRun), delta-debugs any failure down to a minimal
// counterexample, and prints a one-line command that replays it
// byte-identically.
package explore

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Tick overrides one tie-break decision: at the pos'th choice point of
// the run (a Step where >= 2 cross-domain events are enabled at the same
// timestamp), fire candidate val instead of candidate 0. val is reduced
// modulo the live candidate count, so every (pos, val) pair is a valid
// schedule of every run.
type Tick struct {
	Pos uint32
	Val uint32
}

// Fault kinds the explorer can place. Each reuses a deterministic chaos
// injector rule, so a fault's effect depends only on the schedule.
const (
	FaultDropData = "drop-data" // drop all data-bearing frames in the window
	FaultDropAcks = "drop-acks" // drop all ack/nack frames in the window
	FaultDup      = "dup"       // duplicate every 3rd packet in the window
	FaultPause    = "pause"     // pause one node's NIC for the window
)

// FaultPoint places one fault action on the run's timeline.
type FaultPoint struct {
	Kind string
	At   sim.Time // window start (virtual time)
	Dur  sim.Time // window length
	Node int      // pause target; ignored by the fabric-wide kinds
}

// Shift moves one churn-plan event later by By — the explorer's handle on
// where join/leave requests land relative to traffic and faults.
type Shift struct {
	Event int
	By    sim.Time
}

// Schedule is one fully-determined execution: seed plus decisions. The
// zero-decision Schedule{Seed: s} is the default FIFO run of seed s.
type Schedule struct {
	Seed   int64
	Ticks  []Tick
	Faults []FaultPoint
	Shifts []Shift
}

// Decisions counts the schedule's explicit decision items — the quantity
// shrinking minimizes.
func (s Schedule) Decisions() int { return len(s.Ticks) + len(s.Faults) + len(s.Shifts) }

// canon returns the schedule with its decision lists sorted into the
// canonical order String emits, without mutating the receiver.
func (s Schedule) canon() Schedule {
	s.Ticks = append([]Tick(nil), s.Ticks...)
	s.Faults = append([]FaultPoint(nil), s.Faults...)
	s.Shifts = append([]Shift(nil), s.Shifts...)
	sort.Slice(s.Ticks, func(i, j int) bool {
		if s.Ticks[i].Pos != s.Ticks[j].Pos {
			return s.Ticks[i].Pos < s.Ticks[j].Pos
		}
		return s.Ticks[i].Val < s.Ticks[j].Val
	})
	sort.Slice(s.Faults, func(i, j int) bool {
		a, b := s.Faults[i], s.Faults[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Node < b.Node
	})
	sort.Slice(s.Shifts, func(i, j int) bool {
		if s.Shifts[i].Event != s.Shifts[j].Event {
			return s.Shifts[i].Event < s.Shifts[j].Event
		}
		return s.Shifts[i].By < s.Shifts[j].By
	})
	return s
}

// String renders the schedule as one replayable token:
//
//	s<seed>[!t<pos>.<val>]...[!f<kind>@<at>+<dur>.n<node>]...[!c<event>+<by>]...
//
// Times are integer nanoseconds of virtual time, so Parse(String()) is
// exact. Decision lists are emitted in canonical sorted order — the token
// doubles as the dedup key for "distinct schedules".
func (s Schedule) String() string {
	s = s.canon()
	var b strings.Builder
	fmt.Fprintf(&b, "s%d", s.Seed)
	for _, t := range s.Ticks {
		fmt.Fprintf(&b, "!t%d.%d", t.Pos, t.Val)
	}
	for _, f := range s.Faults {
		fmt.Fprintf(&b, "!f%s@%d+%d.n%d", f.Kind, int64(f.At), int64(f.Dur), f.Node)
	}
	for _, c := range s.Shifts {
		fmt.Fprintf(&b, "!c%d+%d", c.Event, int64(c.By))
	}
	return b.String()
}

// Parse decodes a String()-rendered schedule token.
func Parse(tok string) (Schedule, error) {
	var s Schedule
	parts := strings.Split(tok, "!")
	if len(parts) == 0 || !strings.HasPrefix(parts[0], "s") {
		return s, fmt.Errorf("explore: schedule %q does not start with s<seed>", tok)
	}
	seed, err := strconv.ParseInt(parts[0][1:], 10, 64)
	if err != nil {
		return s, fmt.Errorf("explore: bad seed in %q: %v", tok, err)
	}
	s.Seed = seed
	for _, p := range parts[1:] {
		if p == "" {
			return s, fmt.Errorf("explore: empty decision in %q", tok)
		}
		body := p[1:]
		switch p[0] {
		case 't':
			var pos, val uint32
			if _, err := fmt.Sscanf(body, "%d.%d", &pos, &val); err != nil {
				return s, fmt.Errorf("explore: bad tick %q: %v", p, err)
			}
			s.Ticks = append(s.Ticks, Tick{Pos: pos, Val: val})
		case 'f':
			at := strings.IndexByte(body, '@')
			if at < 0 {
				return s, fmt.Errorf("explore: bad fault %q", p)
			}
			kind := body[:at]
			switch kind {
			case FaultDropData, FaultDropAcks, FaultDup, FaultPause:
			default:
				return s, fmt.Errorf("explore: unknown fault kind %q", kind)
			}
			var start, dur int64
			var node int
			if _, err := fmt.Sscanf(body[at+1:], "%d+%d.n%d", &start, &dur, &node); err != nil {
				return s, fmt.Errorf("explore: bad fault %q: %v", p, err)
			}
			s.Faults = append(s.Faults, FaultPoint{Kind: kind, At: sim.Time(start), Dur: sim.Time(dur), Node: node})
		case 'c':
			var ev int
			var by int64
			if _, err := fmt.Sscanf(body, "%d+%d", &ev, &by); err != nil {
				return s, fmt.Errorf("explore: bad shift %q: %v", p, err)
			}
			s.Shifts = append(s.Shifts, Shift{Event: ev, By: sim.Time(by)})
		default:
			return s, fmt.Errorf("explore: unknown decision %q in %q", p, tok)
		}
	}
	return s, nil
}
