package explore

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/member"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Config parameterizes an exploration: the workload shape every schedule
// runs, and the exploration budget knobs. The zero value explores the CI
// smoke shape.
type Config struct {
	// Nodes/Msgs/Size/Transitions shape the churn workload each schedule
	// drives (defaults 8/6/512/4 — small enough that one run is a few
	// milliseconds of wall time, large enough to roll several epochs).
	Nodes       int
	Msgs        int
	Size        int
	Transitions int
	// Seed feeds the cluster RNG and (mixed per derivation) the churn
	// plan; Schedule.Seed overrides it per schedule.
	Seed int64
	// Deadline bounds each run in virtual time (default 1 simulated
	// second).
	Deadline sim.Time
	// MaxShrinkRuns caps the re-executions delta-debugging may spend per
	// counterexample (default 250).
	MaxShrinkRuns int
	// Metrics optionally receives explorer instrumentation (runs,
	// failures, shrink runs). Each schedule's cluster always uses a
	// private registry — the invariant checker needs an isolated diff.
	Metrics *metrics.Registry

	// failNonDefault is the test-only injected mutation: when > 0, a run
	// is marked failed once it takes at least this many non-default
	// tie-break decisions. It exists to prove end to end that the
	// explorer catches a schedule-dependent bug and shrinks it to a
	// minimal decision set.
	failNonDefault int
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.Msgs <= 0 {
		c.Msgs = 6
	}
	if c.Size <= 0 {
		c.Size = 512
	}
	if c.Transitions <= 0 {
		c.Transitions = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Deadline <= 0 {
		c.Deadline = sim.Second
	}
	if c.MaxShrinkRuns <= 0 {
		c.MaxShrinkRuns = 250
	}
	return c
}

// Outcome is one schedule's verdict plus the observations the explorer
// steers by.
type Outcome struct {
	Schedule   Schedule
	Pass       bool
	Violations []string

	// ChoicePoints counts the Steps where >= 2 events were enabled;
	// MaxBranch the widest such set; NonDefault how many of the
	// schedule's ticks actually changed a decision (a tick whose pos the
	// run never reached, or whose val reduced to 0, moves nothing).
	ChoicePoints int
	MaxBranch    int
	NonDefault   int

	Finish      sim.Time
	Epochs      int
	Rejected    int
	Transitions int
}

// plan regenerates cfg's churn plan with sched's shifts applied. The base
// plan derives from the seed exactly as the chaos membership campaigns
// derive theirs, so schedule seed s explores the same workload chaosbench
// scripts at seed s.
func (cfg Config) plan(sched Schedule) (workload.ChurnPlan, error) {
	plan, err := workload.GenerateChurn(workload.ChurnSpec{
		Nodes:        cfg.Nodes,
		Transitions:  cfg.Transitions,
		Msgs:         cfg.Msgs,
		MeanSize:     cfg.Size,
		MeanGap:      15 * sim.Microsecond,
		MeanChurnGap: 60 * sim.Microsecond,
	}, sim.NewRNG(chaos.ScenarioSeed(sched.Seed, "member-plan")))
	if err != nil {
		return plan, err
	}
	for _, sh := range sched.Shifts {
		if sh.Event < 0 || sh.Event >= len(plan.Events) {
			continue // shrinking may orphan a shift; it just stops mattering
		}
		plan.Events[sh.Event].At += sh.By
	}
	return plan, nil
}

// Run executes one schedule from scratch — fresh serial cluster, fresh
// churn plan, the schedule's faults installed, the schedule's tie-break
// decisions fed to the engine chooser — and evaluates the full membership
// invariant on the trace. Identical (Config, Schedule) pairs produce
// identical Outcomes, which is what makes the printed repro command a
// faithful replay.
func Run(cfg Config, sched Schedule) Outcome {
	cfg = cfg.withDefaults()
	if sched.Seed == 0 {
		sched.Seed = cfg.Seed
	}
	out := Outcome{Schedule: sched}

	plan, err := cfg.plan(sched)
	if err != nil {
		out.Violations = []string{err.Error()}
		return out
	}

	reg := metrics.New()
	ccfg := cluster.DefaultConfig(cfg.Nodes)
	ccfg.Seed = sched.Seed
	ccfg.Metrics = reg
	c := cluster.NewFromConfig(ccfg)
	if c.Eng == nil {
		panic("explore: schedule exploration requires a serial cluster")
	}

	inj := chaos.NewInjector(c.Net, chaos.ScenarioSeed(sched.Seed, "explore-faults"))
	for i, f := range sched.Faults {
		name := fmt.Sprintf("%s-%d", f.Kind, i)
		until := f.At + f.Dur
		switch f.Kind {
		case FaultDropData:
			inj.DropWindow(name, f.At, until, chaos.MatchData)
		case FaultDropAcks:
			inj.DropWindow(name, f.At, until, chaos.MatchAcks)
		case FaultDup:
			inj.Duplicate(name, f.At, until, 3, chaos.MatchAll)
		case FaultPause:
			n := f.Node
			if n < 0 || n >= cfg.Nodes {
				n = cfg.Nodes - 1
			}
			inj.PauseNIC(c.Nodes[n].HW, f.At, until)
		default:
			out.Violations = []string{fmt.Sprintf("explore: unknown fault kind %q", f.Kind)}
			return out
		}
	}

	// The chooser consumes the schedule's sparse tick overrides by choice
	// position; every position not named fires the default (FIFO) pick.
	ticks := make(map[uint32]uint32, len(sched.Ticks))
	for _, t := range sched.Ticks {
		ticks[t.Pos] = t.Val
	}
	points, maxBranch, nonDefault := 0, 0, 0
	c.Eng.SetChooser(func(n int) int {
		pos := uint32(points)
		points++
		if n > maxBranch {
			maxBranch = n
		}
		if v, ok := ticks[pos]; ok {
			pick := int(v % uint32(n))
			if pick != 0 {
				nonDefault++
			}
			return pick
		}
		return 0
	})

	data := c.OpenPorts(chaos.MemberDataPort)
	ctrl := c.OpenPorts(chaos.MemberCtrlPort)
	before := reg.Snapshot()
	res := member.RunOn(c, member.Config{
		DataPort: chaos.MemberDataPort,
		CtrlPort: chaos.MemberCtrlPort,
		Deadline: cfg.Deadline,
	}, plan, data, ctrl)
	diff := reg.Snapshot().Diff(before)

	out.Violations = chaos.CheckMemberRun(c, ccfg, res, data, ctrl, diff, cfg.Deadline)
	if cfg.failNonDefault > 0 && nonDefault >= cfg.failNonDefault {
		out.Violations = append(out.Violations, fmt.Sprintf(
			"injected mutation: %d non-default decisions taken (threshold %d)", nonDefault, cfg.failNonDefault))
	}
	out.Pass = len(out.Violations) == 0
	out.ChoicePoints = points
	out.MaxBranch = maxBranch
	out.NonDefault = nonDefault
	out.Finish = res.Finish
	out.Epochs = len(res.Epochs)
	out.Rejected = res.Rejected
	out.Transitions = res.Transitions

	c.Eng.SetChooser(nil)
	c.Kill()
	return out
}

// ReproCommand renders the one-line command that replays a schedule.
func ReproCommand(cfg Config, sched Schedule) string {
	cfg = cfg.withDefaults()
	return fmt.Sprintf("go run ./cmd/explore -nodes %d -msgs %d -size %d -transitions %d -replay '%s'",
		cfg.Nodes, cfg.Msgs, cfg.Size, cfg.Transitions, sched.String())
}
