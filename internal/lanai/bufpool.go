package lanai

import (
	"repro/internal/metrics"
	"repro/internal/sim"
)

// BufPool manages a fixed number of NIC SRAM packet buffers. Firmware
// acquires a buffer before staging a packet and releases it when the
// buffer's last use completes. Waiters are served FIFO; grants are
// delivered through scheduled events so release chains cannot recurse.
type BufPool struct {
	eng     *sim.Engine
	name    string
	cap     int
	free    int
	waiters []bufWaiter
	// granted holds acquisition callbacks whose buffer has been handed
	// over but whose grant event has not yet fired; deliverGrant (via the
	// pre-bound grantFn) pops them FIFO, so a release schedules no
	// per-grant closure.
	granted []func(*Buf)
	grantFn func()
	// MaxQueued tracks the high-water mark of waiters, a resource
	// pressure diagnostic.
	MaxQueued int

	// Cached instruments, set via NIC.SetMetrics; nil (no-op) otherwise.
	mInUse   *metrics.Gauge
	mStalls  *metrics.Counter
	mStallNs *metrics.Counter
}

// bufWaiter is one queued acquisition and the time it began waiting.
type bufWaiter struct {
	fn    func(*Buf)
	since sim.Time
}

// Buf is a token for one NIC packet buffer.
type Buf struct {
	pool     *BufPool
	released bool
}

// NewBufPool returns a pool of n buffers.
func NewBufPool(eng *sim.Engine, name string, n int) *BufPool {
	if n < 1 {
		panic("lanai: buffer pool needs at least one buffer")
	}
	p := &BufPool{eng: eng, name: name, cap: n, free: n}
	p.grantFn = p.deliverGrant
	return p
}

// Cap reports the pool's size; Free the currently-available count.
func (p *BufPool) Cap() int  { return p.cap }
func (p *BufPool) Free() int { return p.free }

// Queued reports how many acquisitions are waiting.
func (p *BufPool) Queued() int { return len(p.waiters) }

// Acquire grants a buffer to fn, immediately if one is free, otherwise
// when one is released (FIFO). An empty pool counts as an exhaustion
// stall; the wait is charged to the stall-time counter when the grant
// finally arrives.
func (p *BufPool) Acquire(fn func(*Buf)) {
	if p.free > 0 {
		p.free--
		p.mInUse.Add(1)
		fn(&Buf{pool: p})
		return
	}
	p.mStalls.Inc()
	p.waiters = append(p.waiters, bufWaiter{fn: fn, since: p.eng.Now()})
	if len(p.waiters) > p.MaxQueued {
		p.MaxQueued = len(p.waiters)
	}
}

// TryAcquire grants a buffer only if one is free right now; the receive
// path uses it so a full NIC drops rather than blocks the wire.
func (p *BufPool) TryAcquire() (*Buf, bool) {
	if p.free == 0 {
		return nil, false
	}
	p.free--
	p.mInUse.Add(1)
	return &Buf{pool: p}, true
}

// Release returns b to its pool. The longest-waiting acquirer, if any, is
// granted the buffer at the current virtual time (the buffer stays in use,
// so the occupancy gauge is untouched). Double release panics: it means
// the firmware's buffer lifetime accounting is broken.
func (b *Buf) Release() {
	if b.released {
		panic("lanai: double release of " + b.pool.name + " buffer")
	}
	b.released = true
	p := b.pool
	if len(p.waiters) > 0 {
		w := p.waiters[0]
		p.waiters[0] = bufWaiter{}
		p.waiters = p.waiters[1:]
		p.mStallNs.AddInt(int64(p.eng.Now() - w.since))
		p.granted = append(p.granted, w.fn)
		p.eng.After(0, p.grantFn)
		return
	}
	p.free++
	p.mInUse.Add(-1)
	if p.free > p.cap {
		panic("lanai: pool " + p.name + " over capacity")
	}
}

// deliverGrant fires one queued grant event: the longest-waiting callback
// receives its buffer. Grant events and the granted queue are both FIFO,
// so the front callback always belongs to the event now firing.
func (p *BufPool) deliverGrant() {
	fn := p.granted[0]
	p.granted[0] = nil
	p.granted = p.granted[1:]
	fn(&Buf{pool: p})
}
