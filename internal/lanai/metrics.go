package lanai

import "repro/internal/metrics"

// Component is the metrics component name for the NIC hardware layer.
const Component = "lanai"

// SetMetrics wires hardware instrumentation into reg, keyed by this NIC's
// node ID. Instruments are cached on the NIC and its buffer pools so the
// per-event hot paths perform no map lookups; with a disabled registry
// every cached instrument is nil and each update is a no-op, while a nil
// registry gets a private always-on one backing the deprecated Stats
// accessor. Call before attaching firmware so no events go uncounted.
func (n *NIC) SetMetrics(reg *metrics.Registry) {
	reg = metrics.Ensure(reg)
	n.reg = reg
	id := int(n.ID)
	n.mCPUBusyNs = reg.Counter(Component, id, "cpu_busy_ns")
	n.mCPUBacklogNs = reg.Gauge(Component, id, "cpu_backlog_ns")
	n.mSDMABusyNs = reg.Counter(Component, id, "sdma_busy_ns")
	n.mRDMABusyNs = reg.Counter(Component, id, "rdma_busy_ns")
	n.mHostEvents = reg.Counter(Component, id, "host_events")
	n.mHostQueue = reg.Gauge(Component, id, "host_queue_depth")
	n.mRxNoBuffer = reg.Counter(Component, id, "rx_nobuffer")
	n.mRxPausedDrops = reg.Counter(Component, id, "rx_paused_drops")
	n.SendBufs.setMetrics(reg, id, "sendbuf")
	n.RecvBufs.setMetrics(reg, id, "recvbuf")
}

// Registry reports the registry wired by SetMetrics (nil if none); the GM
// firmware and the multicast extension pull it from here so the whole NIC
// stack shares one registry.
func (n *NIC) Registry() *metrics.Registry { return n.reg }

// setMetrics attaches occupancy and exhaustion-stall instruments to the
// pool under the given name prefix ("sendbuf"/"recvbuf").
func (p *BufPool) setMetrics(reg *metrics.Registry, node int, prefix string) {
	p.mInUse = reg.Gauge(Component, node, prefix+"_inuse")
	p.mStalls = reg.Counter(Component, node, prefix+"_stalls")
	p.mStallNs = reg.Counter(Component, node, prefix+"_stall_ns")
}
