package lanai

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
)

func testNIC(t *testing.T) (*sim.Engine, *NIC, *NIC) {
	t.Helper()
	eng := sim.NewEngine()
	net := fabric.SingleSwitch(eng, 2, fabric.DefaultLinkParams())
	a := New(eng, net.Iface(0), DefaultParams())
	b := New(eng, net.Iface(1), DefaultParams())
	a.RxDispatch = func(p *fabric.Packet) {}
	b.RxDispatch = func(p *fabric.Packet) {}
	return eng, a, b
}

func TestCPUSerializesWork(t *testing.T) {
	eng, a, _ := testNIC(t)
	var done []sim.Time
	eng.At(0, func() {
		a.CPUDo(1000, func() { done = append(done, eng.Now()) })
		a.CPUDo(1000, func() { done = append(done, eng.Now()) })
	})
	eng.Run()
	if len(done) != 2 || done[0] != 1000 || done[1] != 2000 {
		t.Fatalf("CPU completions %v, want [1000 2000]", done)
	}
}

func TestDMAEnginesRunConcurrentlyWithCPU(t *testing.T) {
	eng, a, _ := testNIC(t)
	var cpuDone, dmaDone sim.Time
	eng.At(0, func() {
		a.CPUDo(5000, func() { cpuDone = eng.Now() })
		a.HostToNIC(1000, func() { dmaDone = eng.Now() })
	})
	eng.Run()
	if cpuDone != 5000 {
		t.Fatalf("cpu done at %v, want 5000", cpuDone)
	}
	want := a.DMATime(1000)
	if dmaDone != want {
		t.Fatalf("dma done at %v, want %v (must not queue behind CPU)", dmaDone, want)
	}
}

func TestDMATimeModel(t *testing.T) {
	_, a, _ := testNIC(t)
	got := a.DMATime(1000)
	want := a.P.DMAStartup + sim.PerByte(a.P.PCINsPerByte, 1000)
	if got != want {
		t.Fatalf("DMATime(1000) = %v, want %v", got, want)
	}
	if a.DMATime(0) != a.P.DMAStartup {
		t.Fatal("zero-byte DMA must still pay startup")
	}
}

func TestHostEventQueueFIFO(t *testing.T) {
	eng, a, _ := testNIC(t)
	eng.At(0, func() {
		a.PostHostEvent("first")
		a.PostHostEvent("second")
	})
	eng.Run()
	ev1, ok1 := a.PollHostEvent()
	ev2, ok2 := a.PollHostEvent()
	_, ok3 := a.PollHostEvent()
	if !ok1 || !ok2 || ok3 {
		t.Fatalf("poll results %v %v %v, want true true false", ok1, ok2, ok3)
	}
	if ev1 != "first" || ev2 != "second" {
		t.Fatalf("events %v %v out of order", ev1, ev2)
	}
	if a.Stats().HostEvents != 2 {
		t.Fatalf("HostEvents = %d, want 2", a.Stats().HostEvents)
	}
}

func TestWaitHostEventBlocksUntilPosted(t *testing.T) {
	eng, a, _ := testNIC(t)
	var got any
	var at sim.Time
	eng.Spawn("host", func(p *sim.Proc) {
		got = a.WaitHostEvent(p)
		at = p.Now()
	})
	eng.At(500, func() { a.PostHostEvent("wakeup") })
	eng.Run()
	if got != "wakeup" {
		t.Fatalf("got %v, want wakeup", got)
	}
	if at < 500 {
		t.Fatalf("host woke at %v, before the event was posted", at)
	}
}

func TestBufPoolExhaustionQueuesFIFO(t *testing.T) {
	eng := sim.NewEngine()
	p := NewBufPool(eng, "test", 2)
	var granted []int
	var bufs []*Buf
	hold := func(id int) {
		p.Acquire(func(b *Buf) {
			granted = append(granted, id)
			bufs = append(bufs, b)
		})
	}
	eng.At(0, func() {
		hold(1)
		hold(2)
		hold(3)
		hold(4)
	})
	eng.At(100, func() { bufs[0].Release() })
	eng.At(200, func() { bufs[1].Release() })
	eng.Run()
	want := []int{1, 2, 3, 4}
	if len(granted) != 4 {
		t.Fatalf("granted %v, want %v", granted, want)
	}
	for i := range want {
		if granted[i] != want[i] {
			t.Fatalf("grant order %v, want %v", granted, want)
		}
	}
	if p.MaxQueued != 2 {
		t.Fatalf("MaxQueued = %d, want 2", p.MaxQueued)
	}
}

func TestBufPoolTryAcquire(t *testing.T) {
	eng := sim.NewEngine()
	p := NewBufPool(eng, "rx", 1)
	b, ok := p.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire failed on full pool")
	}
	if _, ok := p.TryAcquire(); ok {
		t.Fatal("TryAcquire succeeded on empty pool")
	}
	b.Release()
	if p.Free() != 1 {
		t.Fatalf("free = %d after release, want 1", p.Free())
	}
}

func TestBufPoolDoubleReleasePanics(t *testing.T) {
	eng := sim.NewEngine()
	p := NewBufPool(eng, "x", 1)
	b, _ := p.TryAcquire()
	b.Release()
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	b.Release()
}

func TestBufPoolReleaseChainDoesNotStarve(t *testing.T) {
	// A release that grants to a waiter which immediately releases again
	// must serve the whole chain without recursion blowups.
	eng := sim.NewEngine()
	p := NewBufPool(eng, "chain", 1)
	served := 0
	var first *Buf
	eng.At(0, func() {
		p.Acquire(func(b *Buf) { first = b })
		for i := 0; i < 1000; i++ {
			p.Acquire(func(b *Buf) {
				served++
				b.Release()
			})
		}
	})
	eng.At(10, func() { first.Release() })
	eng.Run()
	if served != 1000 {
		t.Fatalf("served %d waiters, want 1000", served)
	}
}

func TestRxNoBufferAccounting(t *testing.T) {
	_, a, _ := testNIC(t)
	a.CountRxNoBuffer()
	a.CountRxNoBuffer()
	if a.Stats().RxNoBuffer != 2 {
		t.Fatalf("RxNoBuffer = %d, want 2", a.Stats().RxNoBuffer)
	}
}

func TestHostPostLatency(t *testing.T) {
	eng, a, _ := testNIC(t)
	var seen sim.Time
	eng.At(0, func() { a.HostPost(func() { seen = eng.Now() }) })
	eng.Run()
	if seen != a.P.HostPostLatency {
		t.Fatalf("descriptor visible at %v, want %v", seen, a.P.HostPostLatency)
	}
}

func TestWirePacketReachesRxDispatch(t *testing.T) {
	eng, a, b := testNIC(t)
	var got *fabric.Packet
	b.RxDispatch = func(p *fabric.Packet) { got = p }
	eng.At(0, func() {
		a.Ifc.Inject(&fabric.Packet{Src: 0, Dst: 1, Size: 128, Payload: "hello"})
	})
	eng.Run()
	if got == nil || got.Payload != "hello" {
		t.Fatalf("rx dispatch got %+v", got)
	}
}

func TestBufPoolAccessors(t *testing.T) {
	eng := sim.NewEngine()
	p := NewBufPool(eng, "acc", 3)
	if p.Cap() != 3 || p.Free() != 3 || p.Queued() != 0 {
		t.Fatalf("fresh pool cap=%d free=%d queued=%d", p.Cap(), p.Free(), p.Queued())
	}
	b, _ := p.TryAcquire()
	p.Acquire(func(*Buf) {})
	p.Acquire(func(*Buf) {})
	p.Acquire(func(*Buf) {}) // queues
	if p.Queued() != 1 {
		t.Fatalf("queued = %d, want 1", p.Queued())
	}
	b.Release()
	eng.Run()
	if p.Queued() != 0 {
		t.Fatalf("queued = %d after release, want 0", p.Queued())
	}
}

func TestBufPoolInvalidSizePanics(t *testing.T) {
	eng := sim.NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("zero-buffer pool accepted")
		}
	}()
	NewBufPool(eng, "bad", 0)
}

func TestNICToHostUsesRDMA(t *testing.T) {
	eng, a, _ := testNIC(t)
	var done sim.Time
	eng.At(0, func() { a.NICToHost(1000, func() { done = eng.Now() }) })
	eng.Run()
	if done != a.DMATime(1000) {
		t.Fatalf("RDMA completed at %v, want %v", done, a.DMATime(1000))
	}
	if a.RDMA.Requests() != 1 {
		t.Fatal("RDMA facility not used")
	}
}

func TestPendingHostEvents(t *testing.T) {
	eng, a, _ := testNIC(t)
	eng.At(0, func() {
		a.PostHostEvent(1)
		a.PostHostEvent(2)
	})
	eng.Run()
	if a.PendingHostEvents() != 2 {
		t.Fatalf("pending = %d, want 2", a.PendingHostEvents())
	}
	a.PollHostEvent()
	if a.PendingHostEvents() != 1 {
		t.Fatalf("pending = %d after poll, want 1", a.PendingHostEvents())
	}
}

func TestUnattachedNICPanicsOnDelivery(t *testing.T) {
	eng := sim.NewEngine()
	net := fabric.SingleSwitch(eng, 2, fabric.DefaultLinkParams())
	New(eng, net.Iface(0), DefaultParams())
	New(eng, net.Iface(1), DefaultParams()) // no RxDispatch installed
	eng.At(0, func() {
		net.Iface(0).Inject(&fabric.Packet{Src: 0, Dst: 1, Size: 16})
	})
	defer func() {
		if recover() == nil {
			t.Error("delivery to firmware-less NIC did not panic")
		}
	}()
	eng.Run()
}
