// Package lanai models the hardware resources of a Myrinet NIC built
// around a LANai 9.1 processor: a slow serialized NIC processor, SDMA
// (host→NIC) and RDMA (NIC→host) engines that run concurrently with it,
// finite on-board packet-buffer SRAM, and the host interface (posted
// descriptors in, DMA'd event records out).
//
// The package provides mechanism only; the GM firmware logic that runs on
// these resources lives in package gm, and the paper's multicast extension
// in package core. Keeping them apart mirrors the real system: the authors
// changed firmware, not silicon.
package lanai

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Params describe one NIC's hardware characteristics.
type Params struct {
	// SendBuffers and RecvBuffers are the number of MTU-sized packet
	// buffers carved from NIC SRAM for each direction.
	SendBuffers int
	RecvBuffers int
	// PCINsPerByte is the DMA cost per byte across the host's PCI bus
	// (2.2 ≈ 450 MB/s on the paper's 66 MHz/64-bit bus).
	PCINsPerByte float64
	// DMAStartup is the fixed setup cost of one DMA transaction.
	DMAStartup sim.Time
	// HostPostLatency is the time for a host PIO-posted descriptor to
	// become visible to the NIC processor.
	HostPostLatency sim.Time
	// EventPostCost is the NIC-side cost of DMA-ing an event record into
	// the host's receive queue.
	EventPostCost sim.Time
}

// DefaultParams returns LANai-9.1-era hardware characteristics.
func DefaultParams() Params {
	return Params{
		SendBuffers:     16,
		RecvBuffers:     32,
		PCINsPerByte:    2.2,
		DMAStartup:      700 * sim.Nanosecond,
		HostPostLatency: 250 * sim.Nanosecond,
		EventPostCost:   350 * sim.Nanosecond,
	}
}

// Stats count hardware-level incidents.
type Stats struct {
	// RxNoBuffer counts packets dropped at the wire because no receive
	// buffer was free. Reliability above recovers them.
	RxNoBuffer uint64
	// HostEvents counts event records posted to the host.
	HostEvents uint64
}

// NIC is the hardware model for one network interface.
type NIC struct {
	Eng *sim.Engine
	ID  fabric.NodeID
	P   Params

	// CPU is the LANai processor: every firmware action serializes here.
	CPU *sim.Facility
	// SDMA moves bytes host→NIC; RDMA moves bytes NIC→host. They operate
	// concurrently with the CPU and with each other.
	SDMA *sim.Facility
	RDMA *sim.Facility

	Ifc      *fabric.Iface
	SendBufs *BufPool
	RecvBufs *BufPool

	// RxDispatch is installed by the firmware; it receives every packet
	// that arrives from the wire.
	RxDispatch func(*fabric.Packet)

	// paused, when set, makes the NIC deaf: packets arriving from the wire
	// are discarded before the firmware sees them, as during a firmware
	// reload. Reliability above recovers the lost traffic after Resume.
	paused bool

	hostEvents []any
	// pendingPost stages event records whose RDMA is still in flight;
	// deliverHostEvent (via the pre-bound postFn) pops them FIFO, so
	// posting an event schedules no per-event closure.
	pendingPost []any
	postFn      func()
	hostWaiter  *sim.Waiter

	// Cached instruments, set by SetMetrics; nil (no-op) otherwise.
	reg            *metrics.Registry
	mCPUBusyNs     *metrics.Counter
	mCPUBacklogNs  *metrics.Gauge
	mSDMABusyNs    *metrics.Counter
	mRDMABusyNs    *metrics.Counter
	mHostEvents    *metrics.Counter
	mHostQueue     *metrics.Gauge
	mRxNoBuffer    *metrics.Counter
	mRxPausedDrops *metrics.Counter
}

// New attaches a NIC model to a network interface.
func New(eng *sim.Engine, ifc *fabric.Iface, p Params) *NIC {
	n := &NIC{
		Eng:        eng,
		ID:         ifc.ID(),
		P:          p,
		CPU:        sim.NewFacility(eng, fmt.Sprintf("nic%d.cpu", ifc.ID())),
		SDMA:       sim.NewFacility(eng, fmt.Sprintf("nic%d.sdma", ifc.ID())),
		RDMA:       sim.NewFacility(eng, fmt.Sprintf("nic%d.rdma", ifc.ID())),
		Ifc:        ifc,
		SendBufs:   NewBufPool(eng, fmt.Sprintf("nic%d.sendbufs", ifc.ID()), p.SendBuffers),
		RecvBufs:   NewBufPool(eng, fmt.Sprintf("nic%d.recvbufs", ifc.ID()), p.RecvBuffers),
		hostWaiter: sim.NewWaiter(eng),
	}
	n.postFn = n.deliverHostEvent
	ifc.Deliver = func(pkt *fabric.Packet) {
		if n.paused {
			n.mRxPausedDrops.Inc()
			return
		}
		if n.RxDispatch == nil {
			panic(fmt.Sprintf("lanai: nic %v has no firmware attached", n.ID))
		}
		n.RxDispatch(pkt)
	}
	n.SetMetrics(nil)
	return n
}

// Stats returns a snapshot of the NIC's hardware counters.
//
// Deprecated: read the metrics registry wired via SetMetrics instead;
// this shim reports zeros when the registry is disabled.
func (n *NIC) Stats() Stats {
	return Stats{
		RxNoBuffer: n.mRxNoBuffer.Value(),
		HostEvents: n.mHostEvents.Value(),
	}
}

// CountRxNoBuffer records a packet dropped for want of a receive buffer.
func (n *NIC) CountRxNoBuffer() {
	n.mRxNoBuffer.Inc()
}

// Pause makes the NIC stop receiving: every packet arriving from the wire
// is silently discarded until Resume, modelling a firmware reload or a hung
// NIC processor. Host-posted work and already-scheduled DMA continue — only
// the wire-facing receive path goes deaf.
func (n *NIC) Pause() { n.paused = true }

// Resume re-enables packet reception after a Pause.
func (n *NIC) Resume() { n.paused = false }

// Paused reports whether the NIC is currently discarding arrivals.
func (n *NIC) Paused() bool { return n.paused }

// CPUDo serializes cost worth of work on the LANai processor and runs fn
// when it completes. The backlog gauge records (as a high-water mark) how
// far behind the serialized processor was when this task was queued — the
// simulation's analogue of task-queue depth.
func (n *NIC) CPUDo(cost sim.Time, fn func()) {
	if backlog := n.CPU.FreeAt() - n.Eng.Now(); backlog > 0 {
		n.mCPUBacklogNs.Set(int64(backlog))
	}
	n.mCPUBusyNs.AddInt(int64(cost))
	n.CPU.Do(cost, fn)
}

// DMATime reports the duration of one DMA of the given size.
func (n *NIC) DMATime(size int) sim.Time {
	return n.P.DMAStartup + sim.PerByte(n.P.PCINsPerByte, size)
}

// HostToNIC schedules an SDMA of size bytes and runs fn at completion.
func (n *NIC) HostToNIC(size int, fn func()) {
	d := n.DMATime(size)
	n.mSDMABusyNs.AddInt(int64(d))
	n.SDMA.Do(d, fn)
}

// NICToHost schedules an RDMA of size bytes and runs fn at completion.
func (n *NIC) NICToHost(size int, fn func()) {
	d := n.DMATime(size)
	n.mRDMABusyNs.AddInt(int64(d))
	n.RDMA.Do(d, fn)
}

// HostPost models the host posting a descriptor: after the PIO latency the
// NIC processor sees it and runs fn (fn typically charges CPU time).
func (n *NIC) HostPost(fn func()) {
	n.Eng.After(n.P.HostPostLatency, fn)
}

// PostHostEvent DMAs an event record to the host event queue and wakes any
// process blocked in WaitHostEvent. The RDMA engine carries the record.
func (n *NIC) PostHostEvent(ev any) {
	n.mRDMABusyNs.AddInt(int64(n.P.EventPostCost))
	n.pendingPost = append(n.pendingPost, ev)
	n.RDMA.Do(n.P.EventPostCost, n.postFn)
}

// deliverHostEvent completes one event-record DMA: the oldest staged
// record becomes visible to the host. The RDMA facility is FIFO and every
// record costs the same, so completions fire in posting order and the
// front of pendingPost is always the record whose DMA just finished.
func (n *NIC) deliverHostEvent() {
	ev := n.pendingPost[0]
	n.pendingPost[0] = nil
	n.pendingPost = n.pendingPost[1:]
	n.hostEvents = append(n.hostEvents, ev)
	n.mHostEvents.Inc()
	n.mHostQueue.Set(int64(len(n.hostEvents)))
	n.hostWaiter.WakeAll()
}

// PollHostEvent removes and returns the oldest pending host event.
func (n *NIC) PollHostEvent() (any, bool) {
	if len(n.hostEvents) == 0 {
		return nil, false
	}
	ev := n.hostEvents[0]
	n.hostEvents = n.hostEvents[1:]
	return ev, true
}

// WaitHostEvent blocks the calling process until an event is available,
// then returns it. This is the busy-poll receive loop of a GM host program
// (wall time spent here counts as host CPU time, as in the paper's skew
// measurements).
func (n *NIC) WaitHostEvent(p *sim.Proc) any {
	for {
		if ev, ok := n.PollHostEvent(); ok {
			return ev
		}
		n.hostWaiter.Wait(p)
	}
}

// PendingHostEvents reports the host-queue depth.
func (n *NIC) PendingHostEvents() int { return len(n.hostEvents) }
