package lanai

import "repro/internal/sim"

// Fuse batches repeated firmware work into single CPU events. Arm queues
// the bound function on the LANai CPU once; while that event is still
// queued, further Arm calls are absorbed (Pending reports this state), so
// the caller folds the new work's arguments into its own accumulator and
// the function sees the combined state when it finally runs. The GM ack
// economy uses one per connection: a burst of same-timestamp coalesced
// acks retires a whole window of send records in one AckProcCost event.
//
// The dispatch trampoline is bound at construction, so arming allocates
// nothing.
type Fuse struct {
	nic   *NIC
	fn    func()
	run   func() // pre-bound fire, allocated once
	armed bool
}

// NewFuse binds fn to the NIC's CPU facility.
func NewFuse(nic *NIC, fn func()) *Fuse {
	f := &Fuse{nic: nic, fn: fn}
	f.run = f.fire
	return f
}

func (f *Fuse) fire() {
	f.armed = false
	f.fn()
}

// Pending reports whether an armed event has not yet run.
func (f *Fuse) Pending() bool { return f.armed }

// Arm schedules the bound function after cost on the CPU facility; while
// a previous Arm is still queued the call is absorbed.
func (f *Fuse) Arm(cost sim.Time) {
	if f.armed {
		return
	}
	f.armed = true
	f.nic.CPUDo(cost, f.run)
}
