// Package repro is a full reproduction, in simulation, of "High
// Performance and Reliable NIC-Based Multicast over Myrinet/GM-2"
// (Yu, Buntinas, Panda — ICPP 2003).
//
// The Myrinet/LANai hardware the paper targets no longer exists, so the
// repository implements the complete stack as a deterministic
// discrete-event simulation with a real data plane: a Myrinet-2000-style
// fabric (internal/myrinet), the LANai NIC hardware model (internal/lanai),
// a GM-2-like reliable user-level protocol (internal/gm), the paper's
// NIC-based multicast as a firmware extension (internal/core), spanning
// tree constructions (internal/tree), an MPICH-GM-like MPI layer
// (internal/mpi), and a measurement harness reproducing every figure of
// the evaluation (internal/harness).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate each figure:
//
//	go test -bench=. -benchmem
package repro
