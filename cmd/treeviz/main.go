// Command treeviz prints the spanning trees the multicast schemes use for
// a given system size across message sizes: the host-based binomial tree,
// and the NIC-based scheme's size-specific optimal trees (postal-model
// trees for single-packet messages, pipelining-aware low-fanout trees for
// multi-packet ones), together with their postal parameters.
package main

import (
	"flag"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/myrinet"
	"repro/internal/tree"
)

func main() {
	nodes := flag.Int("nodes", 16, "system size")
	root := flag.Int("root", 0, "root node")
	flag.Parse()

	cfg := cluster.DefaultConfig(*nodes)
	members := make([]myrinet.NodeID, *nodes)
	for i := range members {
		members[i] = myrinet.NodeID(i)
	}

	bin := tree.Binomial(myrinet.NodeID(*root), members)
	fmt.Printf("Host-based binomial tree (%d nodes): depth=%d maxFanout=%d leaves=%d\n%s\n",
		*nodes, bin.Depth(), bin.MaxFanout(), len(bin.Leaves()), bin)

	for _, size := range []int{4, 512, 2048, 4096, 8192, 16384} {
		pp := cfg.Postal(size)
		tr := cfg.OptimalTree(myrinet.NodeID(*root), members, size)
		fmt.Printf("NIC-based tree for %d-byte messages: lambda=%v gap=%v ratio=%.2f depth=%d maxFanout=%d\n%s\n",
			size, pp.Lambda, pp.Gap, pp.Ratio(), tr.Depth(), tr.MaxFanout(), tr)
	}
}
