// Command treeviz prints the spanning trees the multicast schemes use for
// a given system size across message sizes: the host-based binomial tree,
// and the NIC-based scheme's size-specific optimal trees (postal-model
// trees for single-packet messages, pipelining-aware low-fanout trees for
// multi-packet ones), together with their postal parameters.
//
// With -churn N it instead renders the per-epoch tree sequence of a
// churn run: a deterministic plan of N join/leave transitions is
// generated from -seed, replayed through the coordinator's validation
// rules and tree.Incremental, and one Graphviz DOT digraph is emitted
// per committed epoch. Edges carried over from the previous epoch's
// tree are solid; edges the incremental rebuild created are dashed.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/tree"
	"repro/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 16, "system size")
	root := flag.Int("root", 0, "root node")
	churn := flag.Int("churn", 0, "render the per-epoch trees of a churn run with this many transitions")
	seed := flag.Int64("seed", 1, "churn plan seed")
	fanout := flag.Int("fanout", 2, "fanout bound for the churn run's incremental trees")
	flag.Parse()

	if *churn > 0 {
		if err := churnMode(*nodes, *churn, *fanout, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "treeviz: %v\n", err)
			os.Exit(2)
		}
		return
	}

	cfg := cluster.DefaultConfig(*nodes)
	members := make([]fabric.NodeID, *nodes)
	for i := range members {
		members[i] = fabric.NodeID(i)
	}

	bin := tree.Binomial(fabric.NodeID(*root), members)
	fmt.Printf("Host-based binomial tree (%d nodes): depth=%d maxFanout=%d leaves=%d\n%s\n",
		*nodes, bin.Depth(), bin.MaxFanout(), len(bin.Leaves()), bin)

	for _, size := range []int{4, 512, 2048, 4096, 8192, 16384} {
		pp := cfg.Postal(size)
		tr := cfg.OptimalTree(fabric.NodeID(*root), members, size)
		fmt.Printf("NIC-based tree for %d-byte messages: lambda=%v gap=%v ratio=%.2f depth=%d maxFanout=%d\n%s\n",
			size, pp.Lambda, pp.Gap, pp.Ratio(), tr.Depth(), tr.MaxFanout(), tr)
	}
}

// churnMode generates a churn plan, replays its transitions with the
// same acceptance rules the membership coordinator applies, and writes
// one DOT digraph per epoch to stdout.
func churnMode(nodes, transitions, fanout int, seed int64) error {
	plan, err := workload.GenerateChurn(workload.ChurnSpec{
		Nodes:       nodes,
		Transitions: transitions,
		Msgs:        1,
	}, sim.NewRNG(seed))
	if err != nil {
		return err
	}
	root := fabric.NodeID(plan.Root)
	members := map[fabric.NodeID]bool{root: true}
	for _, m := range plan.Initial {
		members[fabric.NodeID(m)] = true
	}

	tr := tree.Incremental(nil, root, memberList(members), fanout)
	writeDot(0, "initial", nil, tr)
	epoch := 1
	for _, ev := range plan.Events {
		n := fabric.NodeID(ev.Node)
		// The coordinator's acceptance rules: no-op joins/leaves, root
		// departure, and would-empty leaves are rejected without a roll.
		if ev.Join == members[n] || (!ev.Join && (n == root || len(members) <= 2)) {
			continue
		}
		members[n] = ev.Join
		if !ev.Join {
			delete(members, n)
		}
		verb := "leave"
		if ev.Join {
			verb = "join"
		}
		next := tree.Incremental(tr, root, memberList(members), fanout)
		writeDot(epoch, fmt.Sprintf("%s %d", verb, n), tr, next)
		tr = next
		epoch++
	}
	return nil
}

func memberList(members map[fabric.NodeID]bool) []fabric.NodeID {
	list := make([]fabric.NodeID, 0, len(members))
	for m := range members {
		list = append(list, m)
	}
	sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	return list
}

// writeDot emits one epoch's tree as a DOT digraph: edges that survive
// from the previous epoch solid, edges the rebuild created dashed.
func writeDot(epoch int, cause string, prev, tr *tree.Tree) {
	fmt.Printf("digraph epoch%d {\n", epoch)
	fmt.Printf("  label=\"epoch %d (%s): %d members, depth %d, maxFanout %d\";\n",
		epoch, cause, tr.Size(), tr.Depth(), tr.MaxFanout())
	fmt.Printf("  %d [shape=doublecircle];\n", tr.Root)
	for _, n := range tr.Nodes() {
		p, ok := tr.Parent(n)
		if !ok {
			continue
		}
		style := "dashed"
		if prev != nil {
			if q, ok := prev.Parent(n); ok && q == p {
				style = "solid"
			}
		} else if epoch == 0 {
			style = "solid" // the initial tree has no predecessor to differ from
		}
		fmt.Printf("  %d -> %d [style=%s];\n", p, n, style)
	}
	fmt.Printf("}\n")
}
