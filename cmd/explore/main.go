// Command explore runs the schedule-exploring model checker over the
// dynamic-membership protocol: it permutes the simulator's tie-break
// decisions among same-timestamp events, places faults and shifts churn
// requests, and evaluates the full membership invariant on every trace.
// Failures are delta-debugged to a minimal counterexample and printed
// with a one-line replay command.
//
//	explore                          500-schedule campaign at 8 nodes, seed 1
//	explore -schedules 5000 -seed 7  bigger hunt under a different seed
//	explore -nodes 12 -transitions 8 heavier workload per schedule
//	explore -replay 's1!t41.2'       re-run one schedule token and report
//
// Output is a pure function of the flags: two invocations with the same
// arguments emit byte-identical reports (the CI smoke diffs them under
// -race). Exits 0 when every schedule passes, 1 on any invariant
// violation, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/explore"
	"repro/internal/metrics"
)

func main() {
	schedules := flag.Int("schedules", 500, "distinct schedules to run in campaign mode")
	nodes := flag.Int("nodes", 8, "cluster size each schedule runs")
	msgs := flag.Int("msgs", 6, "multicast payloads per run")
	size := flag.Int("size", 512, "mean payload size in bytes")
	transitions := flag.Int("transitions", 4, "join/leave transitions per run")
	seed := flag.Int64("seed", 1, "exploration seed (drives workload, sampling and fault placement)")
	shrink := flag.Int("shrink", 250, "re-execution budget for delta-debugging each counterexample")
	replay := flag.String("replay", "", "replay one schedule token instead of running a campaign")
	quiet := flag.Bool("q", false, "suppress per-phase progress lines")
	showMetrics := flag.Bool("metrics", false, "report explorer metrics after the campaign")
	flag.Parse()

	if *nodes < 2 || *msgs < 1 || *transitions < 1 || *schedules < 1 || *shrink < 1 {
		fmt.Fprintln(os.Stderr, "explore: -nodes >= 2, -msgs/-transitions/-schedules/-shrink >= 1")
		os.Exit(2)
	}

	cfg := explore.Config{
		Nodes:         *nodes,
		Msgs:          *msgs,
		Size:          *size,
		Transitions:   *transitions,
		Seed:          *seed,
		MaxShrinkRuns: *shrink,
	}
	if *showMetrics {
		cfg.Metrics = metrics.New()
	}

	if *replay != "" {
		os.Exit(replayOne(cfg, *replay))
	}
	os.Exit(campaign(cfg, *schedules, *quiet, *showMetrics))
}

// campaign runs the exploration and prints the report; returns the exit
// code.
func campaign(cfg explore.Config, budget int, quiet, showMetrics bool) int {
	progress := func(line string) { fmt.Println(line) }
	if quiet {
		progress = nil
	}
	rep := explore.Explore(cfg, budget, progress)

	fmt.Printf("campaign: %d distinct schedules (%d enumerated, %d sampled), %d choice points, max branch %d, seed %d\n",
		rep.Distinct, rep.Enumerated, rep.Sampled, rep.ChoicePoints, rep.MaxBranch, cfg.Seed)
	if showMetrics && cfg.Metrics != nil {
		cfg.Metrics.Snapshot().WriteTable(os.Stdout)
	}
	if len(rep.Failures) == 0 {
		fmt.Printf("all %d schedules passed the membership invariant\n", rep.Distinct)
		return 0
	}
	for i, ce := range rep.Failures {
		fmt.Printf("counterexample %d: %s\n", i+1, ce.Schedule)
		fmt.Printf("  minimal (%d decisions, %d shrink runs): %s\n",
			ce.Minimal.Decisions(), ce.ShrinkRuns, ce.Minimal)
		for _, v := range ce.Violations {
			fmt.Printf("  violation: %s\n", v)
		}
		fmt.Printf("  replay: %s\n", explore.ReproCommand(cfg, ce.Minimal))
	}
	fmt.Fprintf(os.Stderr, "explore: %d of %d schedules violated the membership invariant\n",
		len(rep.Failures), rep.Distinct)
	return 1
}

// replayOne re-executes a single schedule token and reports its verdict;
// returns the exit code.
func replayOne(cfg explore.Config, token string) int {
	sched, err := explore.Parse(token)
	if err != nil {
		fmt.Fprintf(os.Stderr, "explore: bad -replay token: %v\n", err)
		return 2
	}
	out := explore.Run(cfg, sched)
	fmt.Printf("schedule %s\n", out.Schedule)
	fmt.Printf("  choice points %d, max branch %d, non-default decisions %d\n",
		out.ChoicePoints, out.MaxBranch, out.NonDefault)
	fmt.Printf("  finish %v, epochs %d, transitions %d, rejected %d\n",
		out.Finish, out.Epochs, out.Transitions, out.Rejected)
	if out.Pass {
		fmt.Println("PASS: membership invariant holds on this trace")
		return 0
	}
	for _, v := range out.Violations {
		fmt.Printf("  violation: %s\n", v)
	}
	min, runs := explore.Shrink(cfg, out, nil)
	if min.Schedule.Decisions() < out.Schedule.Decisions() {
		fmt.Printf("  minimal (%d decisions, %d shrink runs): %s\n",
			min.Schedule.Decisions(), runs, min.Schedule)
		fmt.Printf("  replay: %s\n", explore.ReproCommand(cfg, min.Schedule))
	}
	fmt.Println("FAIL: membership invariant violated")
	return 1
}
