// Command benchjson measures the event-kernel, sweep-runner, and
// multicast-storm benchmarks (the bodies shared with `go test -bench` via
// internal/benchkernel) and writes a machine-readable perf baseline:
//
//	go run ./cmd/benchjson -rev $(git rev-parse --short HEAD) -o BENCH_sim.json
//
// The output records ns/op, bytes/op and allocs/op for each kernel
// workload on both the live engine and the preserved legacy
// (container/heap) engine, the packet-storm comparison against the seed
// baseline, the wall-clock ratio of the serial vs parallel sweep runner,
// and serial-vs-sharded wall-clock pairs for the single-run multicast
// storm (the conservative PDES mode). Committing the file gives later
// changes a concrete number to be diffed against.
//
// The revision stamp is caller-supplied (-rev): simulation results must be
// a pure function of configuration and seed, so nothing in the measurement
// path reads wall-clock identity like time.Now — provenance comes from the
// caller, who knows what tree it is measuring.
//
// With -check FILE the command instead re-measures the Schedule kernel
// benchmark and the baseline's smallest serial multicast-storm point and
// exits nonzero if either regressed more than -tolerance (default 20%) /
// -storm-tolerance (default 35%) against the committed baseline — the CI
// perf gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/benchkernel"
	"repro/internal/fabric"
	"repro/internal/harness"
	"repro/internal/sim"
)

// seedStorm is the packet-storm result measured at commit 3e4855e (the
// state of the tree before the zero-allocation kernel), produced by
// running the identical PacketStorm body there. It is a recorded
// baseline, not something this command can re-measure.
var seedStorm = benchResult{
	Name:        "PacketStorm@3e4855e",
	NsPerOp:     3283,
	BytesPerOp:  2240,
	AllocsPerOp: 48,
}

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type comparison struct {
	Legacy       string  `json:"legacy"`
	Current      string  `json:"current"`
	Speedup      float64 `json:"speedup"`
	AllocsLegacy int64   `json:"allocs_per_op_legacy"`
	AllocsNow    int64   `json:"allocs_per_op_current"`
}

type sweepResult struct {
	SerialSecPerSweep   float64 `json:"serial_sec_per_sweep"`
	ParallelSecPerSweep float64 `json:"parallel_sec_per_sweep"`
	Speedup             float64 `json:"speedup"`
	NumCPU              int     `json:"num_cpu"`
	GOMAXPROCS          int     `json:"gomaxprocs"`
}

// mcastPoint is one multicast-storm measurement: a full single run (cluster
// build + group install + msgs multicasts) at one (nodes, shards) point.
// VirtualNs is the run's final virtual clock — byte-identical across shard
// counts by the PDES determinism contract, so matching values confirm the
// serial and sharded timings measured the same computation. Every point
// carries its own core provenance (GOMAXPROCS, NumCPU): a sharded wall
// time taken with fewer free cores than shards measures sync overhead,
// not parallel gain, and consumers must be able to tell the difference.
type mcastPoint struct {
	Fabric    string `json:"fabric"`
	Nodes     int    `json:"nodes"`
	Shards    int    `json:"shards"`
	Msgs      int    `json:"msgs"`
	SizeBytes int    `json:"size_bytes"`
	// AckEvery > 0 marks an ack-economy point: the storm ran with
	// cumulative acks every AckEvery packets, piggybacking, and NIC tree
	// ack aggregation (serial only). 0 is the pinned per-packet default.
	AckEvery   int     `json:"ack_every,omitempty"`
	SecPerRun  float64 `json:"sec_per_run"`
	VirtualNs  int64   `json:"virtual_ns"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
}

// mcastSection summarizes the intra-run scaling study. Speedup is the
// serial/4-shard wall ratio at the largest common size — but only when it
// was measured with at least 4 free cores. On fewer cores the shards
// time-slice and the ratio encodes conservative-sync overhead, not
// parallel speedup: the field is then omitted and SpeedupValidity says
// "invalid_on_1cpu", so the committed baseline can never silently launder
// a 1-CPU number into a speedup claim.
type mcastSection struct {
	Points          []mcastPoint `json:"points"`
	Speedup         float64      `json:"speedup_serial_vs_4shard,omitempty"`
	SpeedupValidity string       `json:"speedup_validity"`
	NumCPU          int          `json:"num_cpu"`
	GOMAXPROCS      int          `json:"gomaxprocs"`
	Note            string       `json:"note"`
}

// collBenchPoint is one NIC-resident collective measurement: the average
// virtual latency of one operation at the MPI layer. LatencyUs is simulated
// time — a pure function of configuration and seed — so the -check gate
// requires it to match the baseline exactly, the same contract as the
// storm's virtual_ns. SecPerRun is the wall cost of the measurement,
// recorded for provenance but never gated (it is machine noise).
type collBenchPoint struct {
	Fabric     string  `json:"fabric"`
	Collective string  `json:"collective"`
	Nodes      int     `json:"nodes"`
	Veclen     int     `json:"veclen"`
	LatencyUs  float64 `json:"latency_us"`
	SecPerRun  float64 `json:"sec_per_run"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
}

type collSection struct {
	Points []collBenchPoint `json:"points"`
	Note   string           `json:"note"`
}

type report struct {
	GeneratedBy string        `json:"generated_by"`
	Revision    string        `json:"revision,omitempty"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	NumCPU      int           `json:"num_cpu"`
	Benchmarks  []benchResult `json:"benchmarks"`
	Kernel      []comparison  `json:"kernel_vs_legacy"`
	PacketStorm comparison    `json:"packet_storm_vs_seed"`
	SeedNote    string        `json:"packet_storm_seed_note"`
	Sweep       sweepResult   `json:"sweep"`
	Mcast       *mcastSection `json:"multicast_storm,omitempty"`
	Coll        *collSection  `json:"collective,omitempty"`
}

// collBenchOptions are the fixed measurement options for the collective
// points: generation and -check must agree exactly or the deterministic
// latency comparison would gate a workload change, not a regression.
func collBenchOptions() harness.Options {
	o := harness.DefaultOptions()
	o.Warmup = 2
	o.Iters = 10
	o.Seed = 1
	return o
}

// collPoint measures one NIC-resident collective at the MPI layer.
func collPoint(fc fabric.Config, collective string, nodes, veclen int) collBenchPoint {
	o := collBenchOptions()
	o.Fabric = fc
	start := time.Now()
	lat := o.CollLatency(collective, nodes, veclen, true)
	return collBenchPoint{
		Fabric:     fc.Kind,
		Collective: collective,
		Nodes:      nodes,
		Veclen:     veclen,
		LatencyUs:  lat,
		SecPerRun:  time.Since(start).Seconds(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

func run(name string, fn func(*testing.B)) benchResult {
	r := testing.Benchmark(fn)
	return benchResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

func compare(legacy, current benchResult) comparison {
	return comparison{
		Legacy:       legacy.Name,
		Current:      current.Name,
		Speedup:      legacy.NsPerOp / current.NsPerOp,
		AllocsLegacy: legacy.AllocsPerOp,
		AllocsNow:    current.AllocsPerOp,
	}
}

// stormPoint times one full storm run at (fabric, nodes, shards), best of
// two so a stray GC pause or scheduler hiccup doesn't pollute the committed
// number. ackEvery > 0 runs the serial ack-economy variant instead
// (coalescing every ackEvery packets + piggyback + tree aggregation).
func stormPoint(fc fabric.Config, nodes, shards, msgs, size, ackEvery int) mcastPoint {
	best := time.Duration(0)
	var virt sim.Time
	for i := 0; i < 2; i++ {
		start := time.Now()
		if ackEvery > 0 {
			virt = benchkernel.MulticastStormEconomy(fc, nodes, msgs, size, ackEvery)
		} else {
			virt = benchkernel.MulticastStormOn(fc, nodes, shards, msgs, size)
		}
		if d := time.Since(start); best == 0 || d < best {
			best = d
		}
	}
	return mcastPoint{
		Fabric:     fc.Kind,
		Nodes:      nodes,
		Shards:     shards,
		Msgs:       msgs,
		SizeBytes:  size,
		AckEvery:   ackEvery,
		SecPerRun:  best.Seconds(),
		VirtualNs:  int64(virt),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// check re-measures the Schedule kernel and the serial multicast-storm
// point and gates both against the committed baseline, exiting nonzero on
// regression beyond tol (kernel) / stormTol (storm wall time, which is a
// full end-to-end run and inherently noisier).
func check(path string, tol, stormTol float64) {
	buf, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	var base report
	if err := json.Unmarshal(buf, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", path, err)
		os.Exit(1)
	}
	var want *benchResult
	for i := range base.Benchmarks {
		if base.Benchmarks[i].Name == "Schedule" {
			want = &base.Benchmarks[i]
		}
	}
	if want == nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s has no Schedule baseline\n", path)
		os.Exit(1)
	}
	// Best of three: CI machines are noisy and the gate must not flake on
	// a one-off scheduler stall.
	got := run("Schedule", benchkernel.Schedule)
	for i := 0; i < 2; i++ {
		if r := run("Schedule", benchkernel.Schedule); r.NsPerOp < got.NsPerOp {
			got = r
		}
	}
	limit := want.NsPerOp * (1 + tol)
	fmt.Printf("Schedule: %.1f ns/op, %d allocs/op (baseline %.1f ns/op, limit %.1f)\n",
		got.NsPerOp, got.AllocsPerOp, want.NsPerOp, limit)
	if got.AllocsPerOp > want.AllocsPerOp {
		fmt.Fprintf(os.Stderr, "benchjson: Schedule allocates %d/op, baseline %d/op\n",
			got.AllocsPerOp, want.AllocsPerOp)
		os.Exit(1)
	}
	if got.NsPerOp > limit {
		fmt.Fprintf(os.Stderr, "benchjson: Schedule regressed %.0f%% (%.1f -> %.1f ns/op, tolerance %.0f%%)\n",
			100*(got.NsPerOp/want.NsPerOp-1), want.NsPerOp, got.NsPerOp, 100*tol)
		os.Exit(1)
	}

	// Multicast-storm gate: re-measure the baseline's serial point (shard
	// counts > GOMAXPROCS would gate scheduler noise) and compare wall
	// times. Old baselines without a storm section pass vacuously.
	if base.Mcast == nil {
		return
	}
	var bp, ap *mcastPoint
	for i := range base.Mcast.Points {
		p := &base.Mcast.Points[i]
		if p.Shards != 1 {
			continue
		}
		if p.AckEvery == 0 {
			if bp == nil || p.Nodes < bp.Nodes {
				bp = p
			}
		} else if ap == nil || p.Nodes < ap.Nodes {
			ap = p
		}
	}
	// Gate both disciplines: the pinned per-packet default and (when the
	// baseline carries one) the smallest ack-economy point. Each re-run
	// must land on the committed virtual clock exactly — the storm is a
	// pure function of configuration and seed — and stay inside the wall
	// tolerance.
	for _, g := range []*mcastPoint{bp, ap} {
		if g == nil {
			continue
		}
		fc, err := harness.FabricPreset(g.Fabric)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline storm point has unknown fabric %q: %v\n", g.Fabric, err)
			os.Exit(1)
		}
		np := stormPoint(fc, g.Nodes, g.Shards, g.Msgs, g.SizeBytes, g.AckEvery)
		for i := 0; i < 2; i++ {
			if p := stormPoint(fc, g.Nodes, g.Shards, g.Msgs, g.SizeBytes, g.AckEvery); p.SecPerRun < np.SecPerRun {
				np = p
			}
		}
		if np.VirtualNs != g.VirtualNs {
			fmt.Fprintf(os.Stderr, "benchjson: storm virtual clock diverged from baseline (%d != %d ns, ack_every=%d) — the workload changed; regenerate BENCH_sim.json\n",
				np.VirtualNs, g.VirtualNs, g.AckEvery)
			os.Exit(1)
		}
		stormLimit := g.SecPerRun * (1 + stormTol)
		mode := "serial"
		if g.AckEvery > 0 {
			mode = fmt.Sprintf("serial ack-every=%d", g.AckEvery)
		}
		fmt.Printf("multicast storm %s %d nodes %s: %.3fs/run (baseline %.3fs, limit %.3fs)\n",
			g.Fabric, g.Nodes, mode, np.SecPerRun, g.SecPerRun, stormLimit)
		if np.SecPerRun > stormLimit {
			fmt.Fprintf(os.Stderr, "benchjson: multicast storm (ack_every=%d) regressed %.0f%% (%.3fs -> %.3fs per run, tolerance %.0f%%)\n",
				g.AckEvery, 100*(np.SecPerRun/g.SecPerRun-1), g.SecPerRun, np.SecPerRun, 100*stormTol)
			os.Exit(1)
		}
	}

	// Collective gate: re-measure each baseline point and require the
	// simulated latency to match exactly — virtual time is deterministic,
	// so any difference means the collective protocol's timeline changed
	// and the baseline must be regenerated deliberately. Old baselines
	// without a collective section pass vacuously.
	if base.Coll == nil {
		return
	}
	for _, cp := range base.Coll.Points {
		cfc, err := harness.FabricPreset(cp.Fabric)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline collective point has unknown fabric %q: %v\n", cp.Fabric, err)
			os.Exit(1)
		}
		got := collPoint(cfc, cp.Collective, cp.Nodes, cp.Veclen)
		fmt.Printf("collective %s %s %d nodes: %.2f µs/op (baseline %.2f)\n",
			cp.Fabric, cp.Collective, cp.Nodes, got.LatencyUs, cp.LatencyUs)
		if got.LatencyUs != cp.LatencyUs {
			fmt.Fprintf(os.Stderr, "benchjson: %s %s latency diverged from baseline (%.4f != %.4f µs) — the collective timeline changed; regenerate BENCH_sim.json\n",
				cp.Fabric, cp.Collective, got.LatencyUs, cp.LatencyUs)
			os.Exit(1)
		}
	}
}

func main() {
	out := flag.String("o", "BENCH_sim.json", "output file (- for stdout)")
	rev := flag.String("rev", "", "revision stamp recorded in the output (e.g. git short hash); the sim never reads clock identity itself")
	skipSweep := flag.Bool("skip-sweep", false, "skip the (slow) sweep serial/parallel comparison")
	skipStorm := flag.Bool("skip-storm", false, "skip the (slow) multicast-storm serial/sharded comparison")
	stormNodes := flag.Int("storm-nodes", 512, "multicast-storm system size")
	stormMsgs := flag.Int("storm-msgs", 20, "multicast-storm messages per run")
	stormSize := flag.Int("storm-size", 1024, "multicast-storm payload bytes")
	bigNodes := flag.Int("storm-big", 2048, "largest single sharded storm point (0 to skip)")
	hugeNodes := flag.Int("storm-huge", 16384, "frontier storm point on both fabrics at 4 shards (0 to skip)")
	hugeMsgs := flag.Int("storm-huge-msgs", 3, "messages per run at the frontier point")
	stormAckEvery := flag.Int("storm-ack-every", 8, "record a serial ack-economy storm point with this coalescing factor (0 to skip)")
	fabricName := flag.String("fabric", "myrinet", "interconnect backend for the storm points: "+harness.FabricNames())
	checkFile := flag.String("check", "", "gate mode: compare Schedule against this baseline and exit nonzero on regression")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional ns/op regression in -check mode")
	stormTolerance := flag.Float64("storm-tolerance", 0.35, "allowed fractional sec_per_run regression for the multicast storm in -check mode")
	flag.Parse()

	if *checkFile != "" {
		check(*checkFile, *tolerance, *stormTolerance)
		return
	}

	fc, err := harness.FabricPreset(*fabricName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(2)
	}

	schedule := run("Schedule", benchkernel.Schedule)
	legacySchedule := run("LegacySchedule", benchkernel.LegacySchedule)
	cancel := run("CancelReschedule", benchkernel.CancelReschedule)
	legacyCancel := run("LegacyCancelReschedule", benchkernel.LegacyCancelReschedule)
	storm := run("PacketStorm", benchkernel.PacketStorm)

	rep := report{
		GeneratedBy: "cmd/benchjson",
		Revision:    *rev,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Benchmarks:  []benchResult{schedule, legacySchedule, cancel, legacyCancel, storm, seedStorm},
		Kernel: []comparison{
			compare(legacySchedule, schedule),
			compare(legacyCancel, cancel),
		},
		PacketStorm: compare(seedStorm, storm),
		SeedNote: "seed numbers measured at commit 3e4855e by running the identical " +
			"PacketStorm body against the pre-arena engine; not re-measurable here",
	}

	if !*skipSweep {
		serial := run("SweepSerial", benchkernel.SweepSerial)
		parallel := run("SweepParallel", benchkernel.SweepParallel)
		rep.Benchmarks = append(rep.Benchmarks, serial, parallel)
		rep.Sweep = sweepResult{
			SerialSecPerSweep:   serial.NsPerOp / 1e9,
			ParallelSecPerSweep: parallel.NsPerOp / 1e9,
			Speedup:             serial.NsPerOp / parallel.NsPerOp,
			NumCPU:              runtime.NumCPU(),
			GOMAXPROCS:          runtime.GOMAXPROCS(0),
		}
	}

	if !*skipStorm {
		sec := &mcastSection{
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Note: "sec_per_run is one full run: cluster build + group install + msgs " +
				"multicasts; matching virtual_ns across shard counts certifies identical " +
				"computations. speedup_serial_vs_4shard is only recorded when measured " +
				"with >= 4 free cores (see speedup_validity); on fewer cores sharded " +
				"wall times record conservative-sync overhead, not parallel gain.",
		}
		show := func(p mcastPoint) {
			sec.Points = append(sec.Points, p)
			fmt.Printf("multicast storm %s %d nodes / %d shards: %.2fs (virtual %s, GOMAXPROCS %d)\n",
				p.Fabric, p.Nodes, p.Shards, p.SecPerRun, sim.Time(p.VirtualNs), p.GOMAXPROCS)
		}
		var serialSec, shardSec float64
		for _, shards := range []int{1, 2, 4} {
			p := stormPoint(fc, *stormNodes, shards, *stormMsgs, *stormSize, 0)
			show(p)
			switch shards {
			case 1:
				serialSec = p.SecPerRun
			case 4:
				shardSec = p.SecPerRun
			}
		}
		// Ack-economy pair: a serial storm with coalesced, piggybacked, and
		// tree-aggregated acks, next to a per-packet twin at the same shape
		// so the committed file shows the comparison directly. The economy
		// point uses 16-packet messages: under McastSync a single-packet
		// message never reaches the coalescing count and stalls on the
		// delayed-ack hold, which would record the pathological shape rather
		// than the one the economy exists for. The -check gate re-runs the
		// ack-on point and pins its virtual clock exactly.
		if *stormAckEvery > 0 {
			const ackMsgs, ackSize = 3, 65536
			show(stormPoint(fc, *stormNodes, 1, ackMsgs, ackSize, 0))
			show(stormPoint(fc, *stormNodes, 1, ackMsgs, ackSize, *stormAckEvery))
		}
		if shardSec > 0 {
			if runtime.GOMAXPROCS(0) >= 4 && runtime.NumCPU() >= 4 {
				sec.Speedup = serialSec / shardSec
				sec.SpeedupValidity = "ok"
			} else {
				// Fewer free cores than shards: the ratio would be 1-CPU
				// noise dressed up as a speedup. Record the verdict, not the
				// number.
				sec.SpeedupValidity = "invalid_on_1cpu"
				fmt.Printf("multicast storm: speedup suppressed (GOMAXPROCS %d < 4 shards); serial/4-shard wall ratio %.2f is sync overhead, not parallel gain\n",
					runtime.GOMAXPROCS(0), serialSec/shardSec)
			}
		}
		if *bigNodes > 0 {
			show(stormPoint(fc, *bigNodes, 4, *stormMsgs/2+1, *stormSize, 0))
		}
		// Cross-fabric point: the same storm on the Clos backend, so the
		// committed baseline carries a datacenter-fabric number next to the
		// Myrinet ones (skipped when the whole sweep already ran on Clos).
		if fc.Kind != "clos" {
			cfc, _ := harness.FabricPreset("clos")
			show(stormPoint(cfc, *stormNodes, 1, *stormMsgs, *stormSize, 0))
		}
		// Frontier points: the first 16384-host storms, one per fabric, at
		// 4 shards — the scale the adaptive windows and radix-doubling
		// topologies exist for. A couple of messages suffice: the point
		// records that the scale runs at all and what a run costs.
		if *hugeNodes > 0 {
			show(stormPoint(fc, *hugeNodes, 4, *hugeMsgs, *stormSize, 0))
			if fc.Kind != "clos" {
				cfc, _ := harness.FabricPreset("clos")
				show(stormPoint(cfc, *hugeNodes, 4, *hugeMsgs, *stormSize, 0))
			}
		}
		rep.Mcast = sec
	}

	// NIC-resident collective points: barrier and allreduce at 64 hosts on
	// the sweep's fabric. Virtual latency is the committed number; the
	// -check gate requires it to reproduce exactly.
	coll := &collSection{
		Note: "latency_us is simulated time per operation at the MPI layer (NIC-resident " +
			"engine, warmup 2 / iters 10 / seed 1) and must reproduce exactly under -check; " +
			"sec_per_run is measurement wall cost, recorded but never gated.",
	}
	for _, name := range []string{"barrier", "allreduce"} {
		p := collPoint(fc, name, 64, 1)
		coll.Points = append(coll.Points, p)
		fmt.Printf("collective %s %s %d nodes: %.2f µs/op (%.2fs wall)\n",
			p.Fabric, p.Collective, p.Nodes, p.LatencyUs, p.SecPerRun)
	}
	rep.Coll = coll

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (packet storm: %d -> %d allocs/op, %.2fx faster; sweep speedup %.2fx on %d cores)\n",
		*out, rep.PacketStorm.AllocsLegacy, rep.PacketStorm.AllocsNow,
		rep.PacketStorm.Speedup, rep.Sweep.Speedup, runtime.NumCPU())
}
