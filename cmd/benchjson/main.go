// Command benchjson measures the event-kernel and sweep-runner benchmarks
// (the bodies shared with `go test -bench` via internal/benchkernel) and
// writes a machine-readable perf baseline:
//
//	go run ./cmd/benchjson -o BENCH_sim.json
//
// The output records ns/op, bytes/op and allocs/op for each kernel
// workload on both the live engine and the preserved legacy
// (container/heap) engine, the packet-storm comparison against the seed
// baseline, and the wall-clock ratio of the serial vs parallel sweep
// runner on this machine. Committing the file gives later changes a
// concrete number to be diffed against.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/benchkernel"
)

// seedStorm is the packet-storm result measured at commit 3e4855e (the
// state of the tree before the zero-allocation kernel), produced by
// running the identical PacketStorm body there. It is a recorded
// baseline, not something this command can re-measure.
var seedStorm = benchResult{
	Name:        "PacketStorm@3e4855e",
	NsPerOp:     3283,
	BytesPerOp:  2240,
	AllocsPerOp: 48,
}

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type comparison struct {
	Legacy       string  `json:"legacy"`
	Current      string  `json:"current"`
	Speedup      float64 `json:"speedup"`
	AllocsLegacy int64   `json:"allocs_per_op_legacy"`
	AllocsNow    int64   `json:"allocs_per_op_current"`
}

type sweepResult struct {
	SerialSecPerSweep   float64 `json:"serial_sec_per_sweep"`
	ParallelSecPerSweep float64 `json:"parallel_sec_per_sweep"`
	Speedup             float64 `json:"speedup"`
	NumCPU              int     `json:"num_cpu"`
	GOMAXPROCS          int     `json:"gomaxprocs"`
}

type report struct {
	GeneratedBy string        `json:"generated_by"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	NumCPU      int           `json:"num_cpu"`
	Benchmarks  []benchResult `json:"benchmarks"`
	Kernel      []comparison  `json:"kernel_vs_legacy"`
	PacketStorm comparison    `json:"packet_storm_vs_seed"`
	SeedNote    string        `json:"packet_storm_seed_note"`
	Sweep       sweepResult   `json:"sweep"`
}

func run(name string, fn func(*testing.B)) benchResult {
	r := testing.Benchmark(fn)
	return benchResult{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

func compare(legacy, current benchResult) comparison {
	return comparison{
		Legacy:       legacy.Name,
		Current:      current.Name,
		Speedup:      legacy.NsPerOp / current.NsPerOp,
		AllocsLegacy: legacy.AllocsPerOp,
		AllocsNow:    current.AllocsPerOp,
	}
}

func main() {
	out := flag.String("o", "BENCH_sim.json", "output file (- for stdout)")
	skipSweep := flag.Bool("skip-sweep", false, "skip the (slow) sweep serial/parallel comparison")
	flag.Parse()

	schedule := run("Schedule", benchkernel.Schedule)
	legacySchedule := run("LegacySchedule", benchkernel.LegacySchedule)
	cancel := run("CancelReschedule", benchkernel.CancelReschedule)
	legacyCancel := run("LegacyCancelReschedule", benchkernel.LegacyCancelReschedule)
	storm := run("PacketStorm", benchkernel.PacketStorm)

	rep := report{
		GeneratedBy: "cmd/benchjson",
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Benchmarks:  []benchResult{schedule, legacySchedule, cancel, legacyCancel, storm, seedStorm},
		Kernel: []comparison{
			compare(legacySchedule, schedule),
			compare(legacyCancel, cancel),
		},
		PacketStorm: compare(seedStorm, storm),
		SeedNote: "seed numbers measured at commit 3e4855e by running the identical " +
			"PacketStorm body against the pre-arena engine; not re-measurable here",
	}

	if !*skipSweep {
		serial := run("SweepSerial", benchkernel.SweepSerial)
		parallel := run("SweepParallel", benchkernel.SweepParallel)
		rep.Benchmarks = append(rep.Benchmarks, serial, parallel)
		rep.Sweep = sweepResult{
			SerialSecPerSweep:   serial.NsPerOp / 1e9,
			ParallelSecPerSweep: parallel.NsPerOp / 1e9,
			Speedup:             serial.NsPerOp / parallel.NsPerOp,
			NumCPU:              runtime.NumCPU(),
			GOMAXPROCS:          runtime.GOMAXPROCS(0),
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (packet storm: %d -> %d allocs/op, %.2fx faster; sweep speedup %.2fx on %d cores)\n",
		*out, rep.PacketStorm.AllocsLegacy, rep.PacketStorm.AllocsNow,
		rep.PacketStorm.Speedup, rep.Sweep.Speedup, runtime.NumCPU())
}
