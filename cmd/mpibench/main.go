// Command mpibench regenerates Figure 4 of the paper: MPI-level broadcast
// latency of the modified MPICH-GM (NIC-based multicast) against stock
// MPICH-GM's host-based binomial broadcast, for 4, 8 and 16 node systems,
// up to the largest eager message of 16,287 bytes.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	iters := flag.Int("iters", 60, "timed iterations per point")
	doPlot := flag.Bool("plot", false, "render ASCII factor curves after the tables")
	warmup := flag.Int("warmup", 20, "warm-up iterations per point")
	seed := flag.Int64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", 0, "max parallel sweep points (0 = all cores, 1 = serial)")
	flag.Parse()

	o := harness.DefaultOptions()
	o.Iters = *iters
	o.Warmup = *warmup
	o.Seed = *seed
	o.Workers = *parallel

	fmt.Println("Figure 4: MPI-level broadcast, NIC-based (NB) vs host-based (HB)")
	curves := map[string]harness.Series{}
	for _, nodes := range []int{4, 8, 16} {
		s := o.Fig4(nodes, harness.MPISizes())
		harness.WriteSeries(os.Stdout, fmt.Sprintf("-- %d nodes --", nodes), s)
		curves[fmt.Sprintf("%d nodes", nodes)] = s
	}
	if *doPlot {
		harness.PlotFactors(os.Stdout, "Figure 4(b): factor of improvement", curves)
	}
}
