// Command gmbench regenerates the paper's GM-level evaluation:
//
//	gmbench -fig 3    Figure 3 — NIC-based multisend vs host-based
//	                  multiple unicasts, for 3, 4 and 8 destinations
//	gmbench -fig 5    Figure 5 — NIC-based multicast (optimal tree) vs
//	                  host-based multicast (binomial), for 4/8/16 nodes
//
// The tables print the same series the figures plot: latency per message
// size for both schemes and the factor of improvement.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/harness"
	"repro/internal/metrics"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate: 3 or 5 (0 = both)")
	doPlot := flag.Bool("plot", false, "render ASCII factor curves after the tables")
	iters := flag.Int("iters", 100, "timed iterations per point")
	warmup := flag.Int("warmup", 20, "warm-up iterations per point")
	maxSize := flag.Int("maxsize", 16384, "largest message size in the sweep")
	seed := flag.Int64("seed", 1, "simulation seed")
	fabricName := flag.String("fabric", "myrinet", "interconnect backend: "+harness.FabricNames())
	ackEvery := flag.Int("ack-every", 0, "enable the ack economy: cumulative acks every N packets with piggybacking and tree aggregation (0/1 = per-packet acks)")
	parallel := flag.Int("parallel", 0, "max parallel sweep points (0 = all cores, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	showMetrics := flag.Bool("metrics", false, "report per-layer metrics after each figure")
	metricsJSON := flag.Bool("metrics-json", false, "emit the metrics report as JSON")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gmbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "gmbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	o := harness.DefaultOptions()
	o.Iters = *iters
	o.Warmup = *warmup
	o.Seed = *seed
	o.Workers = *parallel
	fc, err := harness.FabricPreset(*fabricName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gmbench: %v\n", err)
		os.Exit(2)
	}
	o.Fabric = fc
	o.AckEconomy = *ackEvery
	if *showMetrics || *metricsJSON {
		o.Metrics = metrics.New()
	}
	rep := harness.NewReporter(o.Metrics)
	if rep.Enabled() {
		rep.JSON = *metricsJSON
	}
	sizes := harness.MessageSizes(*maxSize)

	switch *fig {
	case 0:
		fig3(o, sizes, *doPlot)
		rep.Report(os.Stdout, "figure 3")
		fig5(o, sizes, *doPlot)
		rep.Report(os.Stdout, "figure 5")
	case 3:
		fig3(o, sizes, *doPlot)
		rep.Report(os.Stdout, "figure 3")
	case 5:
		fig5(o, sizes, *doPlot)
		rep.Report(os.Stdout, "figure 5")
	default:
		fmt.Fprintf(os.Stderr, "gmbench: unknown figure %d (want 3 or 5)\n", *fig)
		os.Exit(2)
	}
}

// writeMemProfile dumps a post-GC heap profile, so the retained-memory
// picture is not dominated by dead sweep clusters.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gmbench: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "gmbench: %v\n", err)
	}
}

func fig3(o harness.Options, sizes []int, doPlot bool) {
	fmt.Println("Figure 3: NIC-based multisend (NB) vs host-based multiple unicasts (HB)")
	curves := map[string]harness.Series{}
	for _, ndest := range []int{3, 4, 8} {
		s := o.Fig3(ndest, sizes)
		harness.WriteSeries(os.Stdout, fmt.Sprintf("-- %d destinations --", ndest), s)
		curves[fmt.Sprintf("%d dests", ndest)] = s
	}
	if doPlot {
		harness.PlotFactors(os.Stdout, "Figure 3(b): factor of improvement", curves)
	}
}

func fig5(o harness.Options, sizes []int, doPlot bool) {
	fmt.Println("Figure 5: GM-level NIC-based multicast (NB) vs host-based multicast (HB)")
	curves := map[string]harness.Series{}
	for _, nodes := range []int{4, 8, 16} {
		s := o.Fig5(nodes, sizes)
		harness.WriteSeries(os.Stdout, fmt.Sprintf("-- %d nodes --", nodes), s)
		curves[fmt.Sprintf("%d nodes", nodes)] = s
	}
	if doPlot {
		harness.PlotFactors(os.Stdout, "Figure 5(b): factor of improvement", curves)
	}
}
