// Command chaosbench runs the deterministic fault-injection campaigns
// over the NIC-based multicast stack:
//
//	chaosbench                 every library scenario at 4, 8 and 16 nodes
//	chaosbench -list           print the scenario library and exit
//	chaosbench -scenario burst-loss -nodes 8
//	chaosbench -short          CI smoke: small clusters, few messages
//	chaosbench -coll           the collective-engine campaign instead:
//	                           rounds of barrier/allreduce/allgather under
//	                           burst loss, dup storms, ack loss and root
//	                           outages (-rounds sets the round count)
//
// Each scenario runs a clean baseline and a faulted run on identically
// seeded clusters, asserts the recovery invariants (every receiver got
// every byte exactly once in order, all buffers and tokens returned, no
// leaked timers, balanced fabric accounting) and reports the recovery
// latency the fault cost. Two runs with the same -seed produce
// byte-identical output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/chaos"
	"repro/internal/harness"
	"repro/internal/metrics"
)

func main() {
	scenario := flag.String("scenario", "", "comma-separated scenario names (empty = whole library)")
	nodeList := flag.String("nodes", "4,8,16", "comma-separated cluster sizes")
	msgs := flag.Int("msgs", 12, "multicast messages per run")
	size := flag.Int("size", 10000, "message size in bytes")
	collMode := flag.Bool("coll", false, "run the collective-engine campaign (barrier/allreduce/allgather under faults)")
	rounds := flag.Int("rounds", 4, "collective rounds per run (-coll only)")
	veclen := flag.Int("veclen", 4, "collective vector elements (-coll only)")
	seed := flag.Int64("seed", 1, "campaign seed")
	fabricName := flag.String("fabric", "myrinet", "interconnect backend: "+harness.FabricNames())
	ackEvery := flag.Int("ack-every", 0, "run with the ack economy enabled: cumulative acks every N packets plus piggybacking and tree aggregation (0/1 = per-packet acks)")
	short := flag.Bool("short", false, "CI smoke mode: 4/8 nodes, 10 messages")
	list := flag.Bool("list", false, "print the scenario library and exit")
	parallel := flag.Int("parallel", 0, "max parallel campaign points (0 = all cores, 1 = serial)")
	showMetrics := flag.Bool("metrics", false, "report per-layer metrics after the campaign")
	metricsJSON := flag.Bool("metrics-json", false, "emit the metrics report as JSON")
	flag.Parse()

	lib := chaos.Library()
	if *list {
		if *collMode {
			for _, sc := range chaos.CollLibrary() {
				fmt.Printf("%-24s %s\n", sc.Name, sc.Desc)
			}
			return
		}
		for _, sc := range lib {
			fmt.Printf("%-18s %s\n", sc.Name, sc.Desc)
		}
		return
	}

	scenarios := lib
	collScenarios := chaos.CollLibrary()
	if *scenario != "" {
		if *collMode {
			collScenarios = collScenarios[:0:0]
			for _, name := range strings.Split(*scenario, ",") {
				sc, ok := chaos.FindColl(strings.TrimSpace(name))
				if !ok {
					fmt.Fprintf(os.Stderr, "chaosbench: unknown collective scenario %q (use -coll -list)\n", name)
					os.Exit(2)
				}
				collScenarios = append(collScenarios, sc)
			}
		} else {
			scenarios = scenarios[:0:0]
			for _, name := range strings.Split(*scenario, ",") {
				sc, ok := chaos.Find(strings.TrimSpace(name))
				if !ok {
					fmt.Fprintf(os.Stderr, "chaosbench: unknown scenario %q (use -list)\n", name)
					os.Exit(2)
				}
				scenarios = append(scenarios, sc)
			}
		}
	}

	nodes, err := parseNodes(*nodeList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosbench: %v\n", err)
		os.Exit(2)
	}
	if *short {
		nodes = []int{4, 8}
		*msgs = 10
	}

	o := harness.DefaultOptions()
	o.Seed = *seed
	o.Workers = *parallel
	fc, err := harness.FabricPreset(*fabricName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaosbench: %v\n", err)
		os.Exit(2)
	}
	o.Fabric = fc
	o.AckEconomy = *ackEvery
	if *showMetrics || *metricsJSON {
		o.Metrics = metrics.New()
	}
	rep := harness.NewReporter(o.Metrics)
	if rep.Enabled() {
		rep.JSON = *metricsJSON
	}

	if *collMode {
		results := o.CollChaosSweep(collScenarios, nodes, *rounds, *veclen)
		title := fmt.Sprintf("collective chaos campaign: %d scenarios x %d cluster sizes, fabric %s, seed %d",
			len(collScenarios), len(nodes), fc.Kind, *seed)
		harness.WriteCollChaosTable(os.Stdout, title, results)
		rep.Report(os.Stdout, "collective chaos campaign")

		if n := harness.CollChaosFailures(results); n > 0 {
			fmt.Fprintf(os.Stderr, "chaosbench: %d of %d campaign points FAILED\n", n, len(results))
			os.Exit(1)
		}
		fmt.Printf("all %d campaign points passed\n", len(results))
		return
	}

	results := o.ChaosSweep(scenarios, nodes, *msgs, *size)
	title := fmt.Sprintf("chaos campaign: %d scenarios x %d cluster sizes, fabric %s, seed %d",
		len(scenarios), len(nodes), fc.Kind, *seed)
	harness.WriteChaosTable(os.Stdout, title, results)
	rep.Report(os.Stdout, "chaos campaign")

	if n := harness.ChaosFailures(results); n > 0 {
		fmt.Fprintf(os.Stderr, "chaosbench: %d of %d campaign points FAILED\n", n, len(results))
		os.Exit(1)
	}
	fmt.Printf("all %d campaign points passed\n", len(results))
}

func parseNodes(s string) ([]int, error) {
	var nodes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad cluster size %q (want integers >= 2)", part)
		}
		nodes = append(nodes, n)
	}
	return nodes, nil
}
