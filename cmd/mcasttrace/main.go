// Command mcasttrace runs one NIC-based multicast with protocol tracing
// enabled and prints the packet timeline: every transmit, receive,
// NIC-based forward, retransmission, and host delivery with its virtual
// timestamp. With -loss it also shows the per-child recovery machinery in
// action.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/gm"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	nodes := flag.Int("nodes", 8, "system size")
	size := flag.Int("size", 4096, "message size in bytes")
	loss := flag.Float64("loss", 0, "per-link packet loss probability")
	seed := flag.Int64("seed", 1, "simulation seed")
	lanes := flag.Bool("lanes", false, "render per-node lanes instead of a flat timeline")
	flag.Parse()

	rec := trace.NewRecorder()
	cfg := cluster.DefaultConfig(*nodes)
	cfg.Trace = rec
	cfg.LossRate = *loss
	cfg.Seed = *seed
	c := cluster.NewFromConfig(cfg)
	ports := c.OpenPorts(1)
	tr := cfg.OptimalTree(0, c.Members(), *size)
	c.InstallGroup(5, tr, 1, 1)

	fmt.Printf("NIC-based multicast of %d bytes over %d nodes (tree depth %d, fanout %d)\n\n",
		*size, *nodes, tr.Depth(), tr.MaxFanout())

	for n := 1; n < *nodes; n++ {
		n := n
		c.Eng.Spawn("dest", func(p *sim.Proc) {
			ports[n].Provide(*size)
			ports[n].Recv(p)
		})
	}
	msg := make([]byte, *size)
	c.Eng.Spawn("root", func(p *sim.Proc) {
		c.Nodes[0].Ext.McastSync(p, ports[0], gm.GroupID(5), msg)
	})
	c.Eng.Run()
	c.Eng.Kill()

	if *lanes {
		rec.WriteLanes(os.Stdout)
	} else {
		rec.WriteTimeline(os.Stdout)
	}
	fmt.Printf("\n%d events in %v of virtual time\n", rec.Len(), c.Eng.Now())
}
