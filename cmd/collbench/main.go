// Command collbench measures the NIC-resident collective engine against
// the traditional host-based algorithms at scale: MPI_Barrier,
// MPI_Allreduce and MPI_Allgather latency for 512, 1024 and 2048-host
// systems, on either fabric backend, with the sharded conservative
// engine carrying the big runs.
//
//	collbench                      the full sweep at 512/1024/2048 hosts
//	collbench -fabric clos         same sweep on the Clos/RDMA backend
//	collbench -collectives barrier -nodes 2048
//	collbench -skew 512            barrier skew-tolerance figure instead:
//	                               host vs NIC barrier latency under
//	                               0-400 µs average process skew
//	collbench -short               CI smoke: 64/128 hosts, few iterations
//
// Both columns ride the full MPI layer, so the comparison includes every
// host-side cost. Allgather results past the eager limit (8·N·veclen >
// 16287 bytes, e.g. 2048 hosts at veclen 1) cannot ride the NIC path's
// preposted token pool; those rows are annotated as host fallback.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/harness"
)

func main() {
	nodesFlag := flag.String("nodes", "", "comma-separated system sizes (default 512,1024,2048)")
	collsFlag := flag.String("collectives", strings.Join(harness.CollNames, ","),
		"comma-separated collectives to measure")
	veclen := flag.Int("veclen", 1, "reduction/gather vector elements per rank")
	warmup := flag.Int("warmup", 2, "warmup operations per point")
	iters := flag.Int("iters", 10, "timed operations per point")
	skewNodes := flag.Int("skew", 0, "run the barrier skew-tolerance figure at this system size instead")
	skewIters := flag.Int("skew-iters", 40, "timed barriers per skew point (-skew only)")
	seed := flag.Int64("seed", 1, "simulation seed")
	fabricName := flag.String("fabric", "myrinet", "interconnect backend: "+harness.FabricNames())
	shards := flag.Int("shards", 4, "engines per simulation run (0 or 1 = serial engine)")
	parallel := flag.Int("parallel", 0, "max parallel sweep points (0 = all cores, 1 = serial)")
	short := flag.Bool("short", false, "CI smoke mode: 64/128 hosts, few iterations")
	plotFlag := flag.Bool("plot", false, "ASCII chart of the skew figure (-skew only)")
	flag.Parse()

	fc, err := harness.FabricPreset(*fabricName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "collbench: %v\n", err)
		os.Exit(2)
	}

	o := harness.DefaultOptions()
	o.Warmup = *warmup
	o.Iters = *iters
	o.SkewIters = *skewIters
	o.Seed = *seed
	o.Workers = *parallel
	o.Shards = *shards
	o.Fabric = fc

	nodeCounts := harness.CollScaleNodeCounts()
	if *nodesFlag != "" {
		nodeCounts, err = parseNodes(*nodesFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "collbench: %v\n", err)
			os.Exit(2)
		}
	}
	if *short {
		nodeCounts = []int{64, 128}
		o.Warmup, o.Iters = 1, 3
		o.SkewIters = 6
	}

	if *skewNodes > 0 {
		n := *skewNodes
		if *short && n > 128 {
			n = 64
		}
		pts := o.BarrierSkewSweep(n, harness.SkewSweep())
		title := fmt.Sprintf("Barrier skew tolerance: %d hosts, fabric %s, %d iters, seed %d",
			n, fc.Kind, o.SkewIters, o.Seed)
		harness.WriteSkew(os.Stdout, title, pts)
		if *plotFlag {
			fmt.Println()
			harness.PlotSkew(os.Stdout, "avg time inside MPI_Barrier under process skew", pts)
		}
		return
	}

	var colls []string
	for _, f := range strings.Split(*collsFlag, ",") {
		name := strings.TrimSpace(f)
		ok := false
		for _, known := range harness.CollNames {
			if name == known {
				ok = true
			}
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "collbench: unknown collective %q (have %s)\n",
				name, strings.Join(harness.CollNames, ", "))
			os.Exit(2)
		}
		colls = append(colls, name)
	}

	pts := o.CollScaleSweep(colls, nodeCounts, *veclen)
	title := fmt.Sprintf("Collective latency: host-based (HB) vs NIC-resident engine (NB), veclen %d, fabric %s, %d iters, seed %d",
		*veclen, fc.Kind, o.Iters, o.Seed)
	harness.WriteCollScale(os.Stdout, title, pts)
}

func parseNodes(s string) ([]int, error) {
	var nodes []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad system size %q (want integers >= 2)", part)
		}
		nodes = append(nodes, n)
	}
	return nodes, nil
}
