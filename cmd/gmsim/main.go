// Command gmsim drives the simulated Myrinet/GM cluster with synthetic
// traffic patterns and reports fabric-level behaviour — latencies,
// goodput, retransmissions, NIC processor utilization. Use it to explore
// the substrate itself (contention, hotspots, loss recovery), separate
// from the paper's multicast microbenchmarks.
//
//	gmsim -nodes 16 -pattern hotspot -messages 2000 -size 4096
//	gmsim -nodes 64 -pattern uniform -loss 0.01
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 16, "system size")
	pattern := flag.String("pattern", "uniform", "traffic pattern: uniform, permutation, hotspot, neighbor")
	messages := flag.Int("messages", 1000, "number of messages")
	size := flag.Int("size", 1024, "mean message size in bytes")
	dist := flag.String("dist", "fixed", "size distribution: fixed, bimodal, uniformsize")
	gapUs := flag.Float64("gap", 5, "mean per-source injection gap in µs")
	loss := flag.Float64("loss", 0, "per-link packet loss probability")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	cfg := cluster.DefaultConfig(*nodes)
	cfg.LossRate = *loss
	cfg.Seed = *seed

	spec := workload.Spec{
		Pattern:  workload.Pattern(*pattern),
		Messages: *messages,
		MeanSize: *size,
		Sizes:    workload.SizeDist(*dist),
		MeanGap:  sim.Micros(*gapUs),
	}
	rep, err := workload.Run(cfg, spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gmsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("workload: %d nodes, %s pattern, %d messages, %s sizes (mean %dB), %.0f%% loss\n",
		*nodes, *pattern, rep.Messages, *dist, *size, *loss*100)
	fmt.Printf("  elapsed (virtual):   %v\n", rep.Elapsed)
	fmt.Printf("  goodput:             %.1f MB/s aggregate\n", rep.ThroughMB)
	fmt.Printf("  message latency:     mean %.2fµs, max %.2fµs\n", rep.MeanLatencyUs, rep.MaxLatencyUs)
	fmt.Printf("  retransmissions:     %d\n", rep.Retransmits)
	fmt.Printf("  rx-buffer drops:     %d\n", rep.RxNoBuffer)
	fmt.Printf("  busiest NIC CPU:     %.1f%% utilized\n", rep.MaxCPUUtil*100)
}
