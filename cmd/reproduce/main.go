// Command reproduce regenerates every figure of the paper in one run and
// checks each of the paper's qualitative claims against the measurements,
// printing a PASS/FAIL verdict per claim — the whole evaluation as a
// single artifact.
//
//	go run ./cmd/reproduce            # quick (reduced iterations)
//	go run ./cmd/reproduce -full      # full sweeps (slower)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/harness"
	"repro/internal/metrics"
)

type check struct {
	name   string
	claim  string
	passed bool
	detail string
}

var checks []check

func record(name, claim string, passed bool, format string, args ...any) {
	checks = append(checks, check{name, claim, passed, fmt.Sprintf(format, args...)})
	status := "PASS"
	if !passed {
		status = "FAIL"
	}
	fmt.Printf("  [%s] %s — %s\n", status, claim, fmt.Sprintf(format, args...))
}

func main() {
	full := flag.Bool("full", false, "full iteration counts (slower)")
	seed := flag.Int64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", 0, "max parallel sweep points (0 = all cores, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	showMetrics := flag.Bool("metrics", false, "print a per-layer metrics breakdown after each figure")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			os.Exit(1)
		}
	}

	o := harness.DefaultOptions()
	o.Seed = *seed
	o.Workers = *parallel
	if !*full {
		o.Iters = 30
		o.SkewIters = 60
	}
	if *showMetrics {
		o.Metrics = metrics.New()
	}
	rep := harness.NewReporter(o.Metrics)

	fmt.Println("Reproducing: High Performance and Reliable NIC-Based Multicast over Myrinet/GM-2 (ICPP 2003)")
	fmt.Println()

	fig3(o)
	rep.Report(os.Stdout, "figure 3 (multisend)")
	fig5(o)
	rep.Report(os.Stdout, "figure 5 (GM-level multicast)")
	fig4(o)
	rep.Report(os.Stdout, "figure 4 (MPI broadcast)")
	fig6(o)
	fig7(o)
	rep.Report(os.Stdout, "figures 6-7 (process skew)")
	section61(o)
	futureWork(o)
	rep.Mark()

	failed := 0
	for _, c := range checks {
		if !c.passed {
			failed++
		}
	}
	fmt.Printf("\n%d/%d qualitative claims reproduced", len(checks)-failed, len(checks))
	// Flush profiles by hand: os.Exit skips deferred functions.
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	writeMemProfile(*memprofile)
	if failed > 0 {
		fmt.Printf(" (%d FAILED)\n", failed)
		os.Exit(1)
	}
	fmt.Println()
}

// writeMemProfile dumps a post-GC heap profile, so the retained-memory
// picture is not dominated by dead sweep clusters.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
	}
}

func fig3(o harness.Options) {
	fmt.Println("Figure 3 — NIC-based multisend vs host-based multiple unicasts")
	small := harness.Point{HB: o.MultisendHB(4, 64), NB: o.MultisendNB(4, 64)}
	large := harness.Point{HB: o.MultisendHB(4, 16384), NB: o.MultisendNB(4, 16384)}
	f3 := harness.Point{HB: o.MultisendHB(3, 64), NB: o.MultisendNB(3, 64)}
	f8 := harness.Point{HB: o.MultisendHB(8, 64), NB: o.MultisendNB(8, 64)}
	record("fig3-small", "small messages improve clearly (paper: up to 2.05x)",
		small.Factor() >= 1.5, "64B to 4 dests: %.2fx", small.Factor())
	record("fig3-large", "large messages level off at/just below parity",
		large.Factor() >= 0.9 && large.Factor() <= 1.05, "16KB to 4 dests: %.2fx", large.Factor())
	record("fig3-dests", "improvement grows with destination count",
		f8.Factor() > f3.Factor(), "3 dests %.2fx vs 8 dests %.2fx", f3.Factor(), f8.Factor())
}

func fig5(o harness.Options) {
	fmt.Println("Figure 5 — GM-level multicast, 16 nodes")
	small := harness.Point{HB: o.MulticastHB(16, 128), NB: o.MulticastNB(16, 128)}
	dip := harness.Point{HB: o.MulticastHB(16, 4096), NB: o.MulticastNB(16, 4096)}
	big := harness.Point{HB: o.MulticastHB(16, 16384), NB: o.MulticastNB(16, 16384)}
	record("fig5-small", "small messages improve clearly (paper: 1.48x)",
		small.Factor() >= 1.4, "128B: %.2fx", small.Factor())
	record("fig5-dip", "single-packet 4KB dips below the small-message factor",
		dip.Factor() < small.Factor(), "4KB %.2fx vs 128B %.2fx", dip.Factor(), small.Factor())
	record("fig5-16k", "16KB stays a clear NIC-based win via pipelining (paper: 1.86x)",
		big.Factor() >= 1.4, "16KB: %.2fx", big.Factor())
}

func fig4(o harness.Options) {
	fmt.Println("Figure 4 — MPI-level broadcast, 16 nodes")
	o2 := o
	o2.Iters = min(o.Iters, 20)
	small := harness.Point{HB: o2.MPIBcast(16, 16, false), NB: o2.MPIBcast(16, 16, true)}
	eager := harness.Point{HB: o2.MPIBcast(16, 8192, false), NB: o2.MPIBcast(16, 8192, true)}
	record("fig4-small", "small messages improve clearly (paper: up to 1.78x)",
		small.Factor() >= 1.4, "16B: %.2fx", small.Factor())
	record("fig4-8k", "8KB eager messages improve (paper: up to 2.02x)",
		eager.Factor() >= 1.2, "8KB: %.2fx", eager.Factor())
}

func fig6(o harness.Options) {
	fmt.Println("Figure 6 — tolerance to process skew, 16 nodes")
	hb0 := o.SkewCPUTime(16, 4, 0, false)
	hb400 := o.SkewCPUTime(16, 4, 400, false)
	nb0 := o.SkewCPUTime(16, 4, 0, true)
	nb400 := o.SkewCPUTime(16, 4, 400, true)
	record("fig6-hb", "host-based CPU time grows with skew",
		hb400 > hb0, "%.1f -> %.1f µs", hb0, hb400)
	record("fig6-nb", "NIC-based CPU time falls/flattens with skew",
		nb400 <= nb0*1.2, "%.1f -> %.1f µs", nb0, nb400)
	record("fig6-factor", "improvement grows with skew (paper: up to 5.82x)",
		hb400/nb400 > hb0/nb0, "factor %.1fx -> %.1fx", hb0/nb0, hb400/nb400)
}

func fig7(o harness.Options) {
	fmt.Println("Figure 7 — skew improvement vs system size (400µs avg skew)")
	pts := o.Fig7([]int{4, 16}, []int{4})
	record("fig7", "larger systems benefit more from the NIC-based multicast",
		pts[1].Factor > pts[0].Factor, "4 nodes %.1fx vs 16 nodes %.1fx",
		pts[0].Factor, pts[1].Factor)
}

func section61(o harness.Options) {
	fmt.Println("Section 6.1 — no impact on non-multicast communication")
	plain := o.UnicastOneWay(4, false)
	ext := o.UnicastOneWay(4, true)
	record("unicast", "unicast latency identical with the extension installed",
		plain == ext, "%.2fµs both ways", plain)
}

func futureWork(o harness.Options) {
	fmt.Println("Section 7 — future work, implemented and measured")
	pts := o.ScaleSweep([]int{16, 128}, 64)
	record("scale", "multicast advantage grows to 128 nodes across Clos fabrics",
		pts[1].Factor() > pts[0].Factor(), "16 nodes %.2fx vs 128 nodes %.2fx",
		pts[0].Factor(), pts[1].Factor())
	nic, host := o.NICBarrier(16), o.HostBarrier(16)
	record("barrier", "NIC-level barrier beats host-level dissemination",
		nic < host, "NIC %.1fµs vs host %.1fµs", nic, host)
}
