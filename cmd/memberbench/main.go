// Command memberbench runs the dynamic-membership campaigns: a churn
// plan of join/leave requests rolls the multicast group through epochs
// while payloads stream, under each fault scenario in the membership
// library.
//
//	memberbench                    every scenario at 6/8/12 nodes x 4/8/12 transitions
//	memberbench -list              print the scenario library and exit
//	memberbench -scenario churn-under-loss -nodes 8 -transitions 10
//	memberbench -short             CI smoke: small sweep, few messages
//
// Each point runs a fault-free baseline and a faulted run on identically
// seeded clusters and asserts the membership invariant — every payload
// multicast in epoch E is delivered exactly once, in order, to exactly
// E's members — plus the full quiescence, resource and packet-accounting
// invariants. Two runs with the same -seed produce byte-identical
// output, serial or -parallel.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/chaos"
	"repro/internal/harness"
	"repro/internal/metrics"
)

func main() {
	scenario := flag.String("scenario", "", "comma-separated scenario names (empty = whole library)")
	nodeList := flag.String("nodes", "6,8,12", "comma-separated cluster sizes")
	churnList := flag.String("transitions", "4,8,12", "comma-separated join/leave transition counts (churn rate)")
	msgs := flag.Int("msgs", 16, "multicast payloads per run")
	size := flag.Int("size", 4096, "mean payload size in bytes")
	seed := flag.Int64("seed", 1, "campaign seed")
	fabricName := flag.String("fabric", "myrinet", "interconnect backend: "+harness.FabricNames())
	short := flag.Bool("short", false, "CI smoke mode: 6/8 nodes, 8 transitions, 10 payloads")
	list := flag.Bool("list", false, "print the scenario library and exit")
	parallel := flag.Int("parallel", 0, "max parallel campaign points (0 = all cores, 1 = serial)")
	showMetrics := flag.Bool("metrics", false, "report per-layer metrics after the campaign")
	metricsJSON := flag.Bool("metrics-json", false, "emit the metrics report as JSON")
	flag.Parse()

	lib := chaos.MemberLibrary()
	if *list {
		for _, sc := range lib {
			fmt.Printf("%-26s %s\n", sc.Name, sc.Desc)
		}
		return
	}

	scenarios := lib
	if *scenario != "" {
		scenarios = scenarios[:0:0]
		for _, name := range strings.Split(*scenario, ",") {
			sc, ok := chaos.FindMember(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "memberbench: unknown scenario %q (use -list)\n", name)
				os.Exit(2)
			}
			scenarios = append(scenarios, sc)
		}
	}

	nodes, err := parseList(*nodeList, 2, "cluster size")
	if err != nil {
		fmt.Fprintf(os.Stderr, "memberbench: %v\n", err)
		os.Exit(2)
	}
	transitions, err := parseList(*churnList, 1, "transition count")
	if err != nil {
		fmt.Fprintf(os.Stderr, "memberbench: %v\n", err)
		os.Exit(2)
	}
	if *short {
		nodes = []int{6, 8}
		transitions = []int{8}
		*msgs = 10
	}

	o := harness.DefaultOptions()
	o.Seed = *seed
	o.Workers = *parallel
	fc, err := harness.FabricPreset(*fabricName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memberbench: %v\n", err)
		os.Exit(2)
	}
	o.Fabric = fc
	if *showMetrics || *metricsJSON {
		o.Metrics = metrics.New()
	}
	rep := harness.NewReporter(o.Metrics)
	if rep.Enabled() {
		rep.JSON = *metricsJSON
	}

	results := o.MemberSweep(scenarios, nodes, transitions, *msgs, *size)
	title := fmt.Sprintf("membership campaign: %d scenarios x %d cluster sizes x %d churn rates, fabric %s, seed %d",
		len(scenarios), len(nodes), len(transitions), fc.Kind, *seed)
	harness.WriteMemberTable(os.Stdout, title, results)
	rep.Report(os.Stdout, "membership campaign")

	if n := harness.MemberFailures(results); n > 0 {
		fmt.Fprintf(os.Stderr, "memberbench: %d of %d campaign points FAILED\n", n, len(results))
		os.Exit(1)
	}
	fmt.Printf("all %d campaign points passed\n", len(results))
}

func parseList(s string, min int, what string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < min {
			return nil, fmt.Errorf("bad %s %q (want integers >= %d)", what, part, min)
		}
		out = append(out, n)
	}
	return out, nil
}
