// Command skewbench regenerates the paper's process-skew evaluation:
//
//	skewbench -fig 6    Figure 6 — average host CPU time of MPI_Bcast on
//	                    16 nodes under 0–400 µs of average process skew,
//	                    for small (2/4/8 B) and large (2/4/8 KB) messages
//	skewbench -fig 7    Figure 7 — the CPU-time improvement factor at
//	                    400 µs average skew across 4/8/12/16-node systems
//	skewbench -barrier  barrier skew tolerance — average time inside
//	                    MPI_Barrier (host-based dissemination vs the
//	                    NIC-resident collective engine) under the same
//	                    0–400 µs skew protocol
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/metrics"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate: 6 or 7 (0 = both)")
	barrier := flag.Bool("barrier", false, "run the barrier skew-tolerance figure instead of 6/7")
	iters := flag.Int("iters", 120, "skewed broadcasts per point")
	nodes := flag.Int("nodes", 16, "system size for figure 6 and -barrier")
	seed := flag.Int64("seed", 1, "simulation seed")
	large := flag.Bool("large", false, "figure 6: also sweep 2/4/8 KB messages (technical-report companion)")
	doPlot := flag.Bool("plot", false, "render ASCII curves after the tables")
	parallel := flag.Int("parallel", 0, "max parallel sweep points (0 = all cores, 1 = serial)")
	showMetrics := flag.Bool("metrics", false, "report per-layer metrics after each figure")
	metricsJSON := flag.Bool("metrics-json", false, "emit the metrics report as JSON")
	flag.Parse()
	plotFlag = *doPlot

	o := harness.DefaultOptions()
	o.SkewIters = *iters
	o.Seed = *seed
	o.Workers = *parallel
	if *showMetrics || *metricsJSON {
		o.Metrics = metrics.New()
	}
	rep := harness.NewReporter(o.Metrics)
	if rep.Enabled() {
		rep.JSON = *metricsJSON
	}

	if *barrier {
		barrierFig(o, *nodes)
		rep.Report(os.Stdout, "barrier skew")
		return
	}

	switch *fig {
	case 0:
		fig6(o, *nodes, *large)
		rep.Report(os.Stdout, "figure 6")
		fig7(o)
		rep.Report(os.Stdout, "figure 7")
	case 6:
		fig6(o, *nodes, *large)
		rep.Report(os.Stdout, "figure 6")
	case 7:
		fig7(o)
		rep.Report(os.Stdout, "figure 7")
	default:
		fmt.Fprintf(os.Stderr, "skewbench: unknown figure %d (want 6 or 7)\n", *fig)
		os.Exit(2)
	}
}

var plotFlag bool

func fig6(o harness.Options, nodes int, large bool) {
	fmt.Printf("Figure 6: avg host CPU time of MPI_Bcast under process skew, %d nodes\n", nodes)
	sizes := []int{2, 4, 8}
	if large {
		sizes = append(sizes, 2048, 4096, 8192)
	}
	for _, size := range sizes {
		pts := o.Fig6(nodes, size, harness.SkewSweep())
		harness.WriteSkew(os.Stdout, fmt.Sprintf("-- %d-byte messages --", size), pts)
		if plotFlag {
			harness.PlotSkew(os.Stdout, fmt.Sprintf("Figure 6(a), %d-byte messages", size), pts)
		}
	}
}

func barrierFig(o harness.Options, nodes int) {
	pts := o.BarrierSkewSweep(nodes, harness.SkewSweep())
	harness.WriteSkew(os.Stdout,
		fmt.Sprintf("Barrier skew tolerance: avg time inside MPI_Barrier, %d nodes", nodes), pts)
	if plotFlag {
		harness.PlotSkew(os.Stdout, "host-based vs NIC-resident barrier under process skew", pts)
	}
}

func fig7(o harness.Options) {
	fmt.Println("Figure 7: improvement factor at 400µs average skew vs system size")
	harness.WriteFig7(os.Stdout, "-- 4-byte and 4-KB messages --",
		o.Fig7([]int{4, 8, 12, 16}, []int{4, 4096}))
}
