// Command scalebench runs the scalability study the paper lists as future
// work ("we intend to study its scalability in large scale systems"):
// NIC-based vs host-based multicast latency to the last destination, for
// systems from one crossbar up through multi-stage Clos networks of
// 16-port switches.
//
// Two axes of parallelism compose here. -parallel fans independent sweep
// points across workers (inter-run); -shards splits every single run
// across engines with the conservative PDES mode (intra-run). The product
// workers x shards is capped at GOMAXPROCS so the two never oversubscribe
// the machine. -matrix instead times one multicast storm per (nodes,
// shards) cell and prints the wall-clock speedup table — the scaling
// study for the parallel engine itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/benchkernel"
	"repro/internal/fabric"
	"repro/internal/harness"
	"repro/internal/sim"
)

func main() {
	iters := flag.Int("iters", 40, "timed iterations per point")
	size := flag.Int("size", 64, "message size in bytes")
	nodesFlag := flag.String("nodes", "8,16,32,64,128", "comma-separated system sizes")
	seed := flag.Int64("seed", 1, "simulation seed")
	fabricName := flag.String("fabric", "myrinet", "interconnect backend: "+harness.FabricNames())
	parallel := flag.Int("parallel", 0, "max parallel sweep points (0 = all cores, 1 = serial)")
	shards := flag.Int("shards", 0, "engines per simulation run (0 or 1 = serial engine)")
	matrix := flag.Bool("matrix", false, "print the shards x nodes multicast-storm speedup matrix and exit")
	msgs := flag.Int("msgs", 10, "multicasts per storm run in -matrix mode")
	flag.Parse()

	var nodeCounts []int
	for _, f := range strings.Split(*nodesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2 {
			fmt.Fprintf(os.Stderr, "scalebench: bad node count %q\n", f)
			os.Exit(2)
		}
		nodeCounts = append(nodeCounts, n)
	}

	fc, err := harness.FabricPreset(*fabricName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scalebench: %v\n", err)
		os.Exit(2)
	}

	if *matrix {
		speedupMatrix(fc, nodeCounts, *msgs, *size)
		return
	}

	o := harness.DefaultOptions()
	o.Iters = *iters
	o.Seed = *seed
	o.Workers = *parallel
	o.Shards = *shards
	o.Fabric = fc
	fmt.Printf("Scalability: time until the last of N hosts holds a %d-byte broadcast\n", *size)
	harness.WriteScale(os.Stdout, "-- NIC-based (NB) vs host-based (HB) --",
		o.ScaleSweep(nodeCounts, *size))
}

// speedupMatrix times one full multicast storm (cluster build + group
// install + msgs broadcasts) per (nodes, shards) cell. Speedups are
// relative to the 1-shard column; they exceed 1.0 only when the shards
// have real cores to run on, so the GOMAXPROCS context prints with the
// table. Sharded cells also show the coordinator's sync accounting —
// windows executed (w), cross-shard events per window (x/w), and the
// average shard's barrier-wait share of window wall time (wait) — so
// conservative-sync overhead is visible without a profiler.
func speedupMatrix(fc fabric.Config, nodeCounts []int, msgs, size int) {
	shardCounts := []int{1, 2, 4, 8}
	fmt.Printf("Multicast-storm wall seconds per run (speedup vs serial), %d msgs x %d bytes, fabric %s, GOMAXPROCS=%d\n",
		msgs, size, fc.Kind, runtime.GOMAXPROCS(0))
	fmt.Printf("sharded cells: w=sync windows, x/w=cross-shard events per window, wait=mean barrier-wait share\n")
	const cell = 34
	fmt.Printf("%8s", "nodes")
	for _, s := range shardCounts {
		fmt.Printf("  %*s", cell, fmt.Sprintf("%d-shard", s))
	}
	fmt.Println()
	for _, n := range nodeCounts {
		fmt.Printf("%8d", n)
		serial := 0.0
		for _, s := range shardCounts {
			if s > n {
				fmt.Printf("  %*s", cell, "-")
				continue
			}
			best := 0.0
			var st sim.ShardStats
			for i := 0; i < 2; i++ {
				start := time.Now()
				_, runStats := benchkernel.MulticastStormStats(fc, n, s, msgs, size)
				if d := time.Since(start).Seconds(); best == 0 || d < best {
					best, st = d, runStats
				}
			}
			if s == 1 {
				serial = best
				fmt.Printf("  %*s", cell, fmt.Sprintf("%.3fs", best))
			} else {
				fmt.Printf("  %*s", cell, fmt.Sprintf("%.3fs %.2fx w=%d x/w=%.1f wait=%.0f%%",
					best, serial/best, st.Windows, st.CrossPerWindow(), 100*st.BarrierWaitShare()))
			}
		}
		fmt.Println()
	}
}
