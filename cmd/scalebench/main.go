// Command scalebench runs the scalability study the paper lists as future
// work ("we intend to study its scalability in large scale systems"):
// NIC-based vs host-based multicast latency to the last destination, for
// systems from one crossbar up through multi-stage Clos networks of
// 16-port switches.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/harness"
)

func main() {
	iters := flag.Int("iters", 40, "timed iterations per point")
	size := flag.Int("size", 64, "message size in bytes")
	nodesFlag := flag.String("nodes", "8,16,32,64,128", "comma-separated system sizes")
	seed := flag.Int64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", 0, "max parallel sweep points (0 = all cores, 1 = serial)")
	flag.Parse()

	var nodeCounts []int
	for _, f := range strings.Split(*nodesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2 {
			fmt.Fprintf(os.Stderr, "scalebench: bad node count %q\n", f)
			os.Exit(2)
		}
		nodeCounts = append(nodeCounts, n)
	}

	o := harness.DefaultOptions()
	o.Iters = *iters
	o.Seed = *seed
	o.Workers = *parallel
	fmt.Printf("Scalability: time until the last of N hosts holds a %d-byte broadcast\n", *size)
	harness.WriteScale(os.Stdout, "-- NIC-based (NB) vs host-based (HB) --",
		o.ScaleSweep(nodeCounts, *size))
}
