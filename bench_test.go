package repro

// One benchmark per figure of the paper's evaluation, plus the ablations
// of the Section 5 design alternatives. Each benchmark runs the full
// simulated experiment per iteration (so ns/op measures simulator
// throughput) and reports the reproduced quantities as custom metrics:
// HB-µs and NB-µs are simulated latencies of the host-based and NIC-based
// schemes, and "factor" is the paper's improvement factor HB/NB.
//
//	go test -bench=Fig5 -benchtime=1x
//
// regenerates a figure's headline points; cmd/gmbench, cmd/mpibench and
// cmd/skewbench print the full series.

import (
	"fmt"
	"testing"

	"repro/internal/benchkernel"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/harness"
	"repro/internal/sim"
	"repro/internal/tree"
)

// benchOptions keeps per-iteration simulation work moderate; determinism
// makes more iterations unnecessary for the reported metrics.
func benchOptions() harness.Options {
	o := harness.DefaultOptions()
	o.Iters = 30
	o.SkewIters = 40
	return o
}

func reportPair(b *testing.B, hb, nb float64) {
	b.ReportMetric(hb, "HB-µs")
	b.ReportMetric(nb, "NB-µs")
	if nb > 0 {
		b.ReportMetric(hb/nb, "factor")
	}
}

// BenchmarkFig3_Multisend reproduces Figure 3: NIC-based multisend vs
// host-based multiple unicasts, per destination count and message size.
func BenchmarkFig3_Multisend(b *testing.B) {
	for _, dests := range []int{3, 4, 8} {
		for _, size := range []int{4, 128, 1024, 4096, 16384} {
			b.Run(fmt.Sprintf("dests=%d/size=%d", dests, size), func(b *testing.B) {
				o := benchOptions()
				var hb, nb float64
				for i := 0; i < b.N; i++ {
					hb = o.MultisendHB(dests, size)
					nb = o.MultisendNB(dests, size)
				}
				reportPair(b, hb, nb)
			})
		}
	}
}

// BenchmarkFig5_GMMulticast reproduces Figure 5: GM-level multicast with
// NIC-based forwarding (optimal tree) vs host-based multicast (binomial).
func BenchmarkFig5_GMMulticast(b *testing.B) {
	for _, nodes := range []int{4, 8, 16} {
		for _, size := range []int{4, 512, 2048, 4096, 16384} {
			b.Run(fmt.Sprintf("nodes=%d/size=%d", nodes, size), func(b *testing.B) {
				o := benchOptions()
				var hb, nb float64
				for i := 0; i < b.N; i++ {
					hb = o.MulticastHB(nodes, size)
					nb = o.MulticastNB(nodes, size)
				}
				reportPair(b, hb, nb)
			})
		}
	}
}

// BenchmarkFig4_MPIBcast reproduces Figure 4: MPI_Bcast latency of the
// modified MPICH-GM against the stock host-based binomial broadcast.
func BenchmarkFig4_MPIBcast(b *testing.B) {
	for _, nodes := range []int{4, 8, 16} {
		for _, size := range []int{4, 512, 8192, 16287} {
			b.Run(fmt.Sprintf("nodes=%d/size=%d", nodes, size), func(b *testing.B) {
				o := benchOptions()
				o.Iters = 15
				var hb, nb float64
				for i := 0; i < b.N; i++ {
					hb = o.MPIBcast(nodes, size, false)
					nb = o.MPIBcast(nodes, size, true)
				}
				reportPair(b, hb, nb)
			})
		}
	}
}

// BenchmarkFig6_Skew reproduces Figure 6: average host CPU time spent in
// MPI_Bcast under random process skew on 16 nodes. The reported metrics
// are CPU-µs per broadcast.
func BenchmarkFig6_Skew(b *testing.B) {
	for _, size := range []int{2, 4, 8, 2048} {
		for _, skew := range []float64{0, 200, 400} {
			b.Run(fmt.Sprintf("size=%d/skew=%.0fus", size, skew), func(b *testing.B) {
				o := benchOptions()
				var hb, nb float64
				for i := 0; i < b.N; i++ {
					hb = o.SkewCPUTime(16, size, skew, false)
					nb = o.SkewCPUTime(16, size, skew, true)
				}
				reportPair(b, hb, nb)
			})
		}
	}
}

// BenchmarkFig7_SkewScaling reproduces Figure 7: the CPU-time improvement
// factor at 400 µs average skew across system sizes.
func BenchmarkFig7_SkewScaling(b *testing.B) {
	for _, nodes := range []int{4, 8, 12, 16} {
		for _, size := range []int{4, 4096} {
			b.Run(fmt.Sprintf("nodes=%d/size=%d", nodes, size), func(b *testing.B) {
				o := benchOptions()
				var hb, nb float64
				for i := 0; i < b.N; i++ {
					hb = o.SkewCPUTime(nodes, size, 400, false)
					nb = o.SkewCPUTime(nodes, size, 400, true)
				}
				reportPair(b, hb, nb)
			})
		}
	}
}

// BenchmarkUnicastRegression verifies the Section 6.1 claim: the multicast
// extension has no impact on non-multicast communication. Both latencies
// are reported; they must be identical.
func BenchmarkUnicastRegression(b *testing.B) {
	for _, size := range []int{4, 4096} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			o := benchOptions()
			var plain, ext float64
			for i := 0; i < b.N; i++ {
				plain = o.UnicastOneWay(size, false)
				ext = o.UnicastOneWay(size, true)
			}
			b.ReportMetric(plain, "plain-µs")
			b.ReportMetric(ext, "ext-µs")
			if plain != ext {
				b.Fatalf("extension perturbed unicast: %v vs %v", plain, ext)
			}
		})
	}
}

// BenchmarkAblation_MultisendTokens compares the implemented callback
// header-rewrite multisend against design alternative 1 (one firmware send
// token per destination), which "saves nothing more than the posting of
// multiple send events".
func BenchmarkAblation_MultisendTokens(b *testing.B) {
	for _, size := range []int{4, 1024} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			o := benchOptions()
			var callback, tokens float64
			for i := 0; i < b.N; i++ {
				callback = o.MultisendNB(8, size)
				o2 := o
				o2.Mut = func(c *cluster.Config) { c.Mcast.Multisend = core.ModeTokens }
				tokens = o2.MultisendNB(8, size)
			}
			b.ReportMetric(callback, "callback-µs")
			b.ReportMetric(tokens, "tokens-µs")
			b.ReportMetric(tokens/callback, "token-penalty")
		})
	}
}

// BenchmarkAblation_TreeShape compares the size-specific optimal tree
// against a binomial tree, both under NIC-based forwarding.
func BenchmarkAblation_TreeShape(b *testing.B) {
	for _, size := range []int{4, 4096} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			o := benchOptions()
			var opt, bin float64
			for i := 0; i < b.N; i++ {
				opt = o.MulticastNB(16, size)
				o2 := o
				o2.NBTree = func(cfg *cluster.Config, root fabric.NodeID, members []fabric.NodeID, size int) *tree.Tree {
					return tree.Binomial(root, members)
				}
				bin = o2.MulticastNB(16, size)
			}
			b.ReportMetric(opt, "optimal-µs")
			b.ReportMetric(bin, "binomial-µs")
		})
	}
}

// BenchmarkAblation_StoreAndForward compares per-packet pipelined
// forwarding against store-and-forward at the intermediate NICs for a
// multi-packet message.
func BenchmarkAblation_StoreAndForward(b *testing.B) {
	o := benchOptions()
	var pipe, sf float64
	for i := 0; i < b.N; i++ {
		pipe = o.MulticastNB(16, 16384)
		o2 := o
		o2.Mut = func(c *cluster.Config) { c.Mcast.Forward = core.ForwardStoreAndForward }
		sf = o2.MulticastNB(16, 16384)
	}
	b.ReportMetric(pipe, "pipelined-µs")
	b.ReportMetric(sf, "storefwd-µs")
	b.ReportMetric(sf/pipe, "pipelining-gain")
}

// BenchmarkAblation_RetransmitSource compares retransmitting from the host
// replica (NIC buffer released at forward time) against pinning NIC
// receive buffers until children acknowledge, under streaming load with a
// small buffer pool.
func BenchmarkAblation_RetransmitSource(b *testing.B) {
	o := benchOptions()
	o.Mut = func(c *cluster.Config) { c.NIC.RecvBuffers = 4 }
	var host, hold float64
	for i := 0; i < b.N; i++ {
		host = o.MulticastNB(8, 16384)
		o2 := o
		o2.Mut = func(c *cluster.Config) {
			c.NIC.RecvBuffers = 4
			c.Mcast.Retransmit = core.RetransmitHoldBuffer
		}
		hold = o2.MulticastNB(8, 16384)
	}
	b.ReportMetric(host, "hostreplica-µs")
	b.ReportMetric(hold, "holdbuffer-µs")
}

// BenchmarkSimulatorThroughput measures raw engine performance: events per
// second of wall time while running a 16-node NIC-based multicast loop.
func BenchmarkSimulatorThroughput(b *testing.B) {
	o := benchOptions()
	events := uint64(0)
	for i := 0; i < b.N; i++ {
		o.MulticastNB(16, 4096)
		events += 200_000 // approximate; dominated by the sweep over leaves
	}
	_ = events
}

// BenchmarkScalability runs the paper's future-work scalability study:
// last-host delivery latency across system sizes, through the Clos
// transition beyond one crossbar.
func BenchmarkScalability(b *testing.B) {
	for _, nodes := range []int{16, 64, 128} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			o := benchOptions()
			var pts []harness.ScalePoint
			for i := 0; i < b.N; i++ {
				pts = o.ScaleSweep([]int{nodes}, 64)
			}
			reportPair(b, pts[0].HB, pts[0].NB)
		})
	}
}

// BenchmarkNICBarrier compares the NIC-level barrier (the future-work
// collective of Section 7, after the authors' "Fast NIC-Level Barrier
// over Myrinet/GM") against a host-level dissemination barrier.
func BenchmarkNICBarrier(b *testing.B) {
	for _, nodes := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			o := benchOptions()
			var nic, host float64
			for i := 0; i < b.N; i++ {
				nic = o.NICBarrier(nodes)
				host = o.HostBarrier(nodes)
			}
			b.ReportMetric(host, "host-µs")
			b.ReportMetric(nic, "nic-µs")
			b.ReportMetric(host/nic, "factor")
		})
	}
}

// BenchmarkNICReduce measures the NIC-based reduction/allreduce (future
// work, after the companion "NIC-Based Reduction" study): latency per
// operation for small and larger vectors.
func BenchmarkNICReduce(b *testing.B) {
	for _, elems := range []int{1, 64, 256} {
		b.Run(fmt.Sprintf("elems=%d", elems), func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				us = measureAllreduce(16, elems, 20)
			}
			b.ReportMetric(us, "allreduce-µs")
		})
	}
}

// measureAllreduce runs `rounds` NIC allreduces on a settled cluster and
// returns the per-operation latency in microseconds.
func measureAllreduce(nodes, elems, rounds int) float64 {
	cfg := cluster.DefaultConfig(nodes)
	c := cluster.NewFromConfig(cfg)
	ports := c.OpenPorts(1)
	tr := tree.Binomial(0, c.Members())
	c.InstallGroup(2, tr, 1, 1)
	c.Eng.Run()
	var total float64
	for i := 0; i < nodes; i++ {
		i := i
		c.Eng.Spawn("p", func(p *sim.Proc) {
			if i != 0 {
				ports[i].ProvideN(rounds, 8*elems+16)
			}
			vec := make([]int64, elems)
			for r := 0; r < rounds; r++ {
				c.Nodes[i].Ext.AllreduceNIC(p, ports[i], 2, vec, core.OpSum)
			}
			if i == 0 {
				total = p.Now().Micros()
			}
		})
	}
	c.Eng.Run()
	c.Eng.Kill()
	return total / float64(rounds)
}

// BenchmarkSweepSerial and BenchmarkSweepParallel time the same GM-level
// sweep through the harness's parallel runner forced serial and fanned
// across GOMAXPROCS workers; their ratio is the sweep speedup recorded in
// BENCH_sim.json. The bodies live in internal/benchkernel.
func BenchmarkSweepSerial(b *testing.B)   { benchkernel.SweepSerial(b) }
func BenchmarkSweepParallel(b *testing.B) { benchkernel.SweepParallel(b) }

// BenchmarkAblation_FastRecovery compares loss-recovery strategies on a
// lossy fabric: the paper's fixed timeout, NACK fast recovery, and
// adaptive RTT-estimated timeouts.
func BenchmarkAblation_FastRecovery(b *testing.B) {
	for _, mode := range []string{"fixed", "nack", "adaptive", "nack+adaptive"} {
		b.Run(mode, func(b *testing.B) {
			o := benchOptions()
			o.Iters = 40
			var us float64
			for i := 0; i < b.N; i++ {
				us = o.LossRecovery(8, 2048, 0.01, mode)
			}
			b.ReportMetric(us, "lossy-mcast-µs")
		})
	}
}

// BenchmarkBandwidth reports streaming goodput: unicast point-to-point
// and the aggregate delivery rate of a 16-node NIC-based multicast.
func BenchmarkBandwidth(b *testing.B) {
	b.Run("unicast-64K", func(b *testing.B) {
		o := benchOptions()
		var mbps float64
		for i := 0; i < b.N; i++ {
			mbps = o.UnicastBandwidth(65536)
		}
		b.ReportMetric(mbps, "MB/s")
	})
	b.Run("mcast16-8K", func(b *testing.B) {
		o := benchOptions()
		var mbps float64
		for i := 0; i < b.N; i++ {
			mbps = o.MulticastAggregateBandwidth(16, 8192)
		}
		b.ReportMetric(mbps, "aggregate-MB/s")
	})
}
